"""The multiprocess cache-refresh pool.

One NSCaching batch refresh is embarrassingly parallel once the cache
row-space is sharded: every shard's slice of the batch reads and writes a
disjoint contiguous row range of the shared-memory storage
(:mod:`repro.parallel.sharded`), so the pool simply ships each slice —
anchor/relation ids plus storage rows, a few KiB — to a persistent worker
process and lets it run the *same* fused score-and-select kernel the
sequential path uses, scattering survivors straight back into shared
memory.  Worker processes are forked once and live for the whole
training run.

Keeping workers on current embeddings costs one parameter publish per
refresh (:meth:`RefreshPool.sync_params`).  Two mechanisms keep that
publish off the critical path:

* **Dirty-row sync** — a :class:`~repro.parallel.dirty.DirtyRowTracker`
  per shared buffer accumulates the rows the optimiser actually touched
  (callers report them via :meth:`RefreshPool.mark_dirty`); the sync
  then ships only ``param[rows]`` slices.  The first sync per buffer,
  any un-marked run, and heavily-dirty tables fall back to the full
  contiguous copy — bit-identical either way, the tracker only changes
  *how many bytes* move.
* **Double buffering + dispatch/collect** — with ``double_buffer=True``
  two shared parameter blocks alternate: :meth:`dispatch` publishes the
  pre-step snapshot into the inactive buffer, flips the buffer index the
  workers read per task, and returns immediately; the trainer runs its
  gradient/optimizer phases while the workers refresh, and
  :meth:`collect` picks up the results at the top of the next batch.
  Algorithm 3 only needs *pre-step* parameters, so overlapping the
  refresh with the step changes nothing about the results.

Determinism: every task draws from its own generator seeded by
``(seed, mode, shard_id, epoch, batch)``.  Streams belong to *shards*,
not workers, so results are bit-identical across worker counts,
scheduling orders, the in-process fallback (``use_processes=False``
or platforms without ``fork``), dirty vs full sync, and overlapped vs
synchronous execution — two seeded runs always produce the same
caches and training trajectory.  Note this stream layout differs from
the sequential single-stream path: parallel refresh (>= 2 workers) is a
*deterministic sibling* of sequential training, not a bit-identical twin;
with 1 worker the sampler keeps the sequential path, which is
bit-identical to the plain ``array`` backend.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_module
import threading
import time
from dataclasses import dataclass
from typing import Any, NamedTuple

import numpy as np

from repro.core.array_cache import ArrayNegativeCache
from repro.core.strategies import (
    UpdateStrategy,
    select_cache_survivors,
    selection_changed_elements,
)
from repro.models.base import CANDIDATE_MODES, KGEModel
from repro.parallel.dirty import DirtyRowTracker
from repro.parallel.sharded import ShardedCacheStore, SharedArrayBlock

__all__ = ["RefreshPool", "ShardTask", "ShardResult", "SyncReport"]

#: Stable ordinal per corruption mode, mixed into the per-task seed so the
#: head- and tail-cache refreshes of one shard draw independent streams.
_MODE_ORDINAL = {mode: i for i, mode in enumerate(CANDIDATE_MODES)}

#: Seconds between liveness checks while waiting on worker results.  A
#: slow-but-alive worker is waited on indefinitely (shard slices can be
#: arbitrarily expensive at scale); only a dead worker aborts the wait.
_RESULT_POLL_SECONDS = 5.0


@dataclass(frozen=True)
class ShardTask:
    """One shard's slice of one batch refresh (a unit of worker work)."""

    mode: str
    shard: int
    epoch: int
    batch: int
    anchors: np.ndarray
    relations: np.ndarray
    rows: np.ndarray  # storage rows, all inside the shard's range
    #: ``time.monotonic()`` at dispatch (0.0 = not stamped).  On Linux the
    #: monotonic clock is system-wide, so a forked worker can subtract it
    #: from its own reading to measure queue wait.
    enqueued_at: float = 0.0


@dataclass(frozen=True)
class ShardResult:
    """Counter deltas and timings a completed task reports back.

    ``seconds`` is the task's execution wall time inside the worker;
    ``queue_wait`` the dispatch→start latency (0.0 when the task was not
    stamped); ``worker_pid`` identifies which process ran it (the parent
    pid under the inline fallback).  The sampler folds these into its
    metrics registry, giving the per-shard refresh timings of the run
    log and ``/metrics``.

    ``spans`` piggybacks the worker's finished trace spans (schema-v2
    ``span`` record dicts) when the pool was built with ``trace=True`` —
    the result queue is the only parent↔worker channel, so shipping the
    timeline on the results needs no extra plumbing.  Empty when tracing
    is off, so untraced refreshes move identical bytes.
    """

    mode: str
    shard: int
    changed: int
    initialised: int
    n_rows: int = 0
    seconds: float = 0.0
    queue_wait: float = 0.0
    worker_pid: int = 0
    spans: tuple[dict[str, Any], ...] = ()


class SyncReport(NamedTuple):
    """What one :meth:`RefreshPool.sync_params` publish actually moved.

    ``bytes_copied / total_bytes`` is the dirty fraction the obs layer
    tracks; ``full_tables`` counts parameter tables that took the
    contiguous full-copy path (first sync, un-marked run, or past the
    tracker's dirty threshold).
    """

    bytes_copied: int
    rows_copied: int
    total_bytes: int
    full_tables: int
    n_tables: int

    @property
    def dirty_fraction(self) -> float:
        """Fraction of the full parameter bytes this sync shipped."""
        if self.total_bytes <= 0:
            return 0.0
        return self.bytes_copied / self.total_bytes


@dataclass(frozen=True)
class _TaskFailure:
    """A worker-side exception, shipped back as text."""

    message: str


@dataclass
class _SideState:
    """Per-mode worker view: a row-addressed cache over the shared blocks."""

    view: ArrayNegativeCache
    n1: int


class _WorkerState:
    """Everything a refresh worker needs; built pre-fork, inherited.

    ``run`` is also the single-process fallback: the pool calls it inline
    when processes are disabled or unavailable, so both execution modes
    share one code path (and are therefore bit-identical).

    ``models`` holds one read-only parameter view per shared buffer;
    ``buffer_flag`` is a shared 1-element index naming the buffer the
    current batch was published into.  The flag only ever flips between
    a :meth:`RefreshPool.collect` and the next :meth:`dispatch` (the
    pool enforces one batch in flight), so a per-task read is race-free.

    With ``trace=True`` the state carries a
    :class:`~repro.obs.trace.Tracer`: built pre-fork, so every worker
    inherits its *own* copy-on-write ring.  ``run`` records one
    ``queue_wait`` and one ``shard_task`` span per task (timestamped on
    the system-wide monotonic axis, comparable with the parent's spans)
    and drains them into the returned :attr:`ShardResult.spans`.
    """

    def __init__(
        self,
        models: tuple[KGEModel, ...],
        buffer_flag: np.ndarray,
        sides: dict[str, _SideState],
        n_entities: int,
        candidate_size: int,
        update_strategy: UpdateStrategy,
        seed: int,
        trace: bool = False,
    ) -> None:
        self.models = models
        self.buffer_flag = buffer_flag
        self.sides = sides
        self.n_entities = n_entities
        self.candidate_size = candidate_size
        self.update_strategy = update_strategy
        self.seed = seed
        if trace:
            from repro.obs.trace import Tracer

            # A task ships 2 spans and drains per result: 1024 slots is
            # pure headroom, not a sizing decision.
            self.tracer: "Tracer | None" = Tracer(capacity=1024)
        else:
            self.tracer = None

    def task_rng(self, task: ShardTask) -> np.random.Generator:
        """The task's own stream: keyed by (seed, mode, shard, epoch, batch)."""
        entropy = (
            self.seed,
            _MODE_ORDINAL[task.mode],
            task.shard,
            task.epoch,
            task.batch,
        )
        return np.random.default_rng(np.random.SeedSequence(entropy))

    def run(self, task: ShardTask) -> ShardResult:
        """Fused Alg. 3 refresh of one shard slice, against shared storage."""
        queue_wait = (
            max(0.0, time.monotonic() - task.enqueued_at)
            if task.enqueued_at > 0.0
            else 0.0
        )
        tracer, task_span = self.tracer, None
        if tracer is not None:
            if task.enqueued_at > 0.0:
                # The wait is already over; record it as a pre-finished
                # span anchored at the dispatch stamp.
                tracer.ingest((
                    {
                        "name": "queue_wait",
                        "cat": "refresh_worker",
                        "ts": task.enqueued_at,
                        "dur": queue_wait,
                        "pid": os.getpid(),
                        "tid": threading.get_native_id(),
                    },
                ))
            task_span = tracer.start_span(
                "shard_task",
                "refresh_worker",
                args={
                    "mode": task.mode,
                    "shard": task.shard,
                    "epoch": task.epoch,
                    "batch": task.batch,
                    "rows": int(len(task.rows)),
                },
            )
        started = time.perf_counter()
        model = self.models[int(self.buffer_flag[0])]
        side = self.sides[task.mode]
        cache = side.view
        cache.rng = self.task_rng(task)
        before_changed = cache.changed_elements
        before_init = cache.initialised_entries

        n1, n2 = side.n1, self.candidate_size
        union = np.empty((len(task.rows), n1 + n2), dtype=np.int64)
        union[:, :n1] = cache.gather(task.rows)  # materialises from task stream
        union[:, n1:] = cache.rng.integers(
            0, self.n_entities, size=(len(task.rows), n2), dtype=np.int64
        )
        scores = model.score_candidates(
            task.anchors, task.relations, union, task.mode
        )
        selection = select_cache_survivors(
            union, scores, n1, self.update_strategy, cache.rng,
            return_scores=cache.store_scores, return_selection=True,
        )
        changed = selection_changed_elements(selection, task.rows, n1)
        cache.scatter(task.rows, selection.ids, selection.scores, changed=changed)
        spans: tuple[dict[str, Any], ...] = ()
        if tracer is not None:
            assert task_span is not None
            task_span.end()
            spans = tuple(tracer.drain())
        return ShardResult(
            task.mode,
            task.shard,
            cache.changed_elements - before_changed,
            cache.initialised_entries - before_init,
            n_rows=len(task.rows),
            seconds=time.perf_counter() - started,
            queue_wait=queue_wait,
            worker_pid=os.getpid(),
            spans=spans,
        )


def _worker_main(state: _WorkerState, tasks: object, results: object) -> None:
    """Worker process loop: drain tasks until the ``None`` sentinel."""
    while True:
        task = tasks.get()  # type: ignore[attr-defined]
        if task is None:
            return
        try:
            results.put(state.run(task))  # type: ignore[attr-defined]
        except Exception as exc:  # ship the failure, keep serving
            # Exception, not BaseException: KeyboardInterrupt/SystemExit
            # must terminate the worker normally, not masquerade as a
            # task failure.
            import traceback

            results.put(  # type: ignore[attr-defined]
                _TaskFailure(
                    f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
                )
            )


class RefreshPool:
    """Persistent worker processes running sharded cache refreshes.

    Parameters
    ----------
    model:
        The training model; its parameters are mirrored into shared
        read-only blocks before every refresh (:meth:`sync_params`).
    caches:
        One :class:`~repro.parallel.sharded.ShardedCacheStore` per
        corruption mode (``"head"``/``"tail"``) — storage must already be
        attached (shards planned) before :meth:`start`.
    n_workers:
        Worker processes to fork.  Values ``< 2`` mean no processes: the
        pool runs every task inline (the deterministic fallback), as it
        also does when the platform lacks the ``fork`` start method.
    use_processes:
        Force the inline fallback with ``False`` (used by the parity
        tests to pin process execution against in-process execution).
    seed:
        Base entropy for the per-``(mode, shard, epoch, batch)`` task
        streams.
    double_buffer:
        Allocate **two** shared parameter blocks instead of one, so a
        batch's snapshot can be published (and its tasks dispatched)
        while the previous batch's results are still outstanding — the
        overlap mode of :meth:`dispatch`/:meth:`collect`.  Costs one
        extra parameter mirror of memory.
    dirty_sync:
        Allow delta-based parameter publishes: once a caller starts
        reporting touched rows via :meth:`mark_dirty`, each sync ships
        only the dirty slices.  ``False`` pins the full-copy path (for
        A/B benchmarking).  Either way the first sync per buffer and
        un-marked runs take the full copy, so results are identical.
    trace:
        Give every worker its own span :class:`~repro.obs.trace.Tracer`
        (built pre-fork); each task's ``queue_wait``/``shard_task``
        spans ship back on :attr:`ShardResult.spans` for the caller to
        merge into one timeline.  Off by default — tracing never touches
        the refresh math, only whether span dicts ride the result queue.
        Must be decided before :meth:`start` (workers inherit the state
        at fork).
    """

    def __init__(
        self,
        model: KGEModel,
        caches: dict[str, ShardedCacheStore],
        *,
        n_entities: int,
        candidate_size: int,
        update_strategy: UpdateStrategy | str,
        seed: int,
        n_workers: int = 1,
        use_processes: bool = True,
        double_buffer: bool = False,
        dirty_sync: bool = True,
        trace: bool = False,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        unknown = sorted(set(caches) - set(CANDIDATE_MODES))
        if unknown:
            raise ValueError(f"unknown corruption mode(s) {unknown}")
        self.model = model
        self.caches = dict(caches)
        self.n_entities = int(n_entities)
        self.candidate_size = int(candidate_size)
        self.update_strategy = UpdateStrategy(update_strategy)
        self.seed = int(seed)
        self.n_workers = int(n_workers)
        self.n_buffers = 2 if double_buffer else 1
        self.dirty_sync = bool(dirty_sync)
        self.trace = bool(trace)
        self._want_processes = bool(use_processes) and self.n_workers >= 2
        #: Per-buffer ``{name: block}`` parameter mirrors (filled by start).
        self._param_blocks: list[dict[str, SharedArrayBlock]] = []
        self._flag_block: SharedArrayBlock | None = None
        self._trackers: list[DirtyRowTracker] = []
        self._armed = False  # becomes True on the first mark_dirty()
        self._publish = 0  # buffer index the next dispatch publishes into
        self._inflight = 0  # dispatched-but-uncollected task count
        self._inline_pending: list[ShardResult | _TaskFailure] = []
        #: The most recent :class:`SyncReport` (telemetry; None pre-sync).
        self.last_sync: SyncReport | None = None
        self._state: _WorkerState | None = None
        self._processes: list[mp.process.BaseProcess] = []
        self._tasks: object | None = None
        self._results: object | None = None
        self._started = False

    # -- lifecycle ------------------------------------------------------------
    @property
    def using_processes(self) -> bool:
        """Whether tasks actually run in worker processes (after start)."""
        return bool(self._processes)

    @property
    def inflight(self) -> int:
        """Dispatched tasks not yet collected (0 = nothing outstanding)."""
        return self._inflight

    def start(self) -> "RefreshPool":
        """Allocate the shared parameter blocks and fork the workers."""
        if self._started:
            return self
        self._started = True

        # Mirror the model into shared memory: workers score through
        # read-only views of these blocks, so a parent-side publish per
        # refresh is all it takes to keep them on the right embeddings.
        # With double buffering each buffer gets its own full mirror and
        # its own dirty tracker (a buffer is only as stale as *its* last
        # publish, which is two batches back when buffers alternate).
        self._flag_block = SharedArrayBlock((1,), np.int64)
        assert self._flag_block.array is not None
        row_counts = {
            name: int(param.shape[0])
            for name, param in self.model.params.items()
        }
        worker_models = []
        for _ in range(self.n_buffers):
            blocks: dict[str, SharedArrayBlock] = {}
            worker_model = self.model.copy()
            for name, param in self.model.params.items():
                block = SharedArrayBlock(param.shape, param.dtype)
                assert block.array is not None
                blocks[name] = block
                view = block.array.view()
                view.setflags(write=False)
                worker_model.params[name] = view
            self._param_blocks.append(blocks)
            self._trackers.append(DirtyRowTracker(row_counts))
            worker_models.append(worker_model)

        sides: dict[str, _SideState] = {}
        for mode, store in self.caches.items():
            layout = store.worker_layout()
            view = ArrayNegativeCache(
                layout["size"],  # type: ignore[arg-type]
                self.n_entities,
                rng=0,  # replaced per task
                store_scores=bool(layout["store_scores"]),
            )
            view.attach_storage(
                None,
                layout["ids"],  # type: ignore[arg-type]
                layout["live"],  # type: ignore[arg-type]
                layout["scores"],  # type: ignore[arg-type]
            )
            sides[mode] = _SideState(view=view, n1=int(layout["size"]))  # type: ignore[arg-type]
        self._state = _WorkerState(
            tuple(worker_models),
            self._flag_block.array,
            sides,
            self.n_entities,
            self.candidate_size,
            self.update_strategy,
            self.seed,
            trace=self.trace,
        )

        if self._want_processes:
            try:
                ctx = mp.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                ctx = None
            if ctx is not None:
                self._tasks = ctx.Queue()
                self._results = ctx.Queue()
                for _ in range(self.n_workers):
                    process = ctx.Process(
                        target=_worker_main,
                        args=(self._state, self._tasks, self._results),
                        daemon=True,
                    )
                    process.start()
                    self._processes.append(process)
        return self

    def close(self) -> None:
        """Stop the workers and release the shared parameter blocks.

        An uncollected in-flight refresh is drained best-effort first —
        its results (and any failures) are discarded, but the queue ends
        empty so the worker shutdown below cannot interleave sentinels
        with unread answers.  A dead worker aborts the drain rather than
        hanging the close.
        """
        if self._inflight:
            try:
                self.collect()
            except RuntimeError:
                pass  # failed/dead workers: shutdown proceeds regardless
        for _ in self._processes:
            assert self._tasks is not None
            self._tasks.put(None)  # type: ignore[attr-defined]
        for process in self._processes:
            process.join(timeout=10.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=5.0)
        self._processes = []
        if self._tasks is not None:
            self._tasks.close()  # type: ignore[attr-defined]
            self._tasks = None
        if self._results is not None:
            self._results.close()  # type: ignore[attr-defined]
            self._results = None
        self._state = None
        self._trackers = []
        self._armed = False
        self._publish = 0
        self._inline_pending = []
        block_sets, self._param_blocks = self._param_blocks, []
        for blocks in block_sets:
            for block in blocks.values():
                block.release()
        if self._flag_block is not None:
            self._flag_block.release()
            self._flag_block = None
        self._started = False

    # -- dirty-row tracking ----------------------------------------------------
    def mark_dirty(self, name: str, rows: np.ndarray) -> None:
        """Report that ``model.params[name][rows]`` changed since last sync.

        The contract behind delta syncs: once a caller starts marking, it
        must mark *every* parameter mutation (the trainer reports the
        optimiser's touched rows and the post-step normalisation).  Marks
        before :meth:`start` are safely dropped — every buffer's first
        sync is a full copy regardless.
        """
        self._armed = True
        if not self._started:
            return
        for tracker in self._trackers:
            tracker.mark(name, rows)

    def mark_all_dirty(self) -> None:
        """Force the next sync of every buffer back to a full copy.

        The escape hatch for bulk parameter mutations that bypass row
        tracking (checkpoint restore, manual edits).
        """
        for tracker in self._trackers:
            tracker.mark_all()

    def dirty_fraction(self) -> float:
        """Pending dirty fraction of the buffer the next sync publishes."""
        if not self._trackers:
            return 1.0
        return self._trackers[self._publish].pending_fraction()

    # -- per-refresh operations -------------------------------------------------
    def sync_params(self) -> SyncReport:
        """Publish current parameters into the next dispatch's buffer.

        Delta path: with :attr:`dirty_sync` enabled and at least one
        :meth:`mark_dirty` call ever made, only each table's dirty rows
        move (``block[rows] = param[rows]``).  Full path — first sync per
        buffer, tracking disabled, never-marked runs, or tables past the
        tracker's threshold — is one contiguous ``np.copyto`` per table.
        Both paths leave identical bytes in the buffer; the returned
        :class:`SyncReport` says how many actually moved.
        """
        if not self._started:
            self.start()
        blocks = self._param_blocks[self._publish]
        tracker = self._trackers[self._publish]
        use_deltas = self.dirty_sync and self._armed
        bytes_copied = rows_copied = full_tables = 0
        total_bytes = 0
        for name, block in blocks.items():
            param = self.model.params[name]
            total_bytes += param.nbytes
            assert block.array is not None
            rows = tracker.drain(name) if use_deltas else None
            if rows is None:
                np.copyto(block.array, param)
                bytes_copied += param.nbytes
                rows_copied += param.shape[0]
                full_tables += 1
            elif len(rows):
                block.array[rows] = param[rows]
                row_bytes = param.nbytes // max(1, param.shape[0])
                bytes_copied += len(rows) * row_bytes
                rows_copied += len(rows)
        if not use_deltas:
            # The full copy covered everything: any rows marked between
            # the previous sync and now are no longer dirty.
            tracker.mark_all()
            for name in blocks:
                tracker.drain(name)
        report = SyncReport(
            bytes_copied=bytes_copied,
            rows_copied=rows_copied,
            total_bytes=total_bytes,
            full_tables=full_tables,
            n_tables=len(blocks),
        )
        self.last_sync = report
        return report

    def dispatch(self, tasks: list[ShardTask]) -> int:
        """Publish a pre-step snapshot and enqueue a batch's shard tasks.

        Returns the number of tasks dispatched (0 for an empty batch —
        in which case no parameter publish happens either).  The tasks
        run against the snapshot taken *here*, so the caller is free to
        mutate the model afterwards; :meth:`collect` picks the results
        up later.  Only one batch may be in flight: dispatching over an
        uncollected batch raises ``RuntimeError``.

        Under the inline fallback (no worker processes) the tasks run
        synchronously right here — same snapshot, same streams, so
        results are bit-identical to process execution; ``collect``
        then just hands the stored results back.
        """
        if self._inflight:
            raise RuntimeError(
                f"{self._inflight} task(s) of a previous dispatch not yet "
                "collected; call collect() first"
            )
        if not tasks:
            return 0  # nothing to refresh: skip the parameter publish too
        if not self._started:
            self.start()
        assert self._state is not None and self._flag_block is not None
        self.sync_params()
        assert self._flag_block.array is not None
        self._flag_block.array[0] = self._publish
        self._publish = (self._publish + 1) % self.n_buffers
        self._inflight = len(tasks)
        if not self._processes:
            # Inline fallback: run now, hand back at collect().
            for task in tasks:
                try:
                    self._inline_pending.append(self._state.run(task))
                except Exception as exc:
                    import traceback

                    self._inline_pending.append(
                        _TaskFailure(
                            f"{type(exc).__name__}: {exc}\n"
                            f"{traceback.format_exc()}"
                        )
                    )
            return len(tasks)
        assert self._tasks is not None
        for task in tasks:
            self._tasks.put(task)  # type: ignore[attr-defined]
        return len(tasks)

    def collect(self) -> list[ShardResult]:
        """Results of the in-flight dispatch (empty if none outstanding).

        Blocks until every dispatched task completed; raises
        ``RuntimeError`` if a worker reported an exception or died.  As
        with the one-shot :meth:`refresh`, one result per dispatched
        task is always drained even after a failure — a partially read
        queue would desync every later refresh.
        """
        if not self._inflight:
            return []
        pending, self._inflight = self._inflight, 0
        results: list[ShardResult] = []
        failure: _TaskFailure | None = None
        if not self._processes:
            drained, self._inline_pending = self._inline_pending, []
            for result in drained:
                if isinstance(result, _TaskFailure):
                    failure = failure or result
                else:
                    results.append(result)
        else:
            for _ in range(pending):
                result = self._next_result()
                if isinstance(result, _TaskFailure):
                    failure = failure or result
                else:
                    results.append(result)
        if failure is not None:
            raise RuntimeError(f"refresh worker failed:\n{failure.message}")
        return results

    def refresh(self, tasks: list[ShardTask]) -> list[ShardResult]:
        """Run a batch's shard tasks (both modes together) synchronously.

        The one-shot publish → dispatch → collect sequence; blocks until
        every task completed.  Raises ``RuntimeError`` if a worker
        reported an exception or died.  An empty batch is a true no-op:
        no parameter publish, no task traffic.
        """
        if not tasks:
            if not self._started:
                self.start()
            return []
        self.dispatch(tasks)
        return self.collect()

    def _next_result(self) -> "ShardResult | _TaskFailure":
        """One queued result; waits as long as every worker stays alive.

        A shard refresh can legitimately run for minutes at scale, so a
        slow worker is never a failure.  Any worker *death* (crash, OOM
        kill) fails the refresh by design: the parent cannot tell whether
        the dead worker held an unanswered task, and waiting on a result
        that will never arrive would hang training — fail fast with a
        clear error instead.
        """
        assert self._results is not None
        while True:
            try:
                return self._results.get(  # type: ignore[attr-defined]
                    timeout=_RESULT_POLL_SECONDS
                )
            except queue_module.Empty:  # pragma: no cover - timing dependent
                dead = [p.pid for p in self._processes if not p.is_alive()]
                if dead:
                    raise RuntimeError(
                        f"refresh worker(s) {dead} died without answering"
                    ) from None

    def __enter__(self) -> "RefreshPool":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        mode = "processes" if self.using_processes else "inline"
        return (
            f"RefreshPool(n_workers={self.n_workers}, mode={mode}, "
            f"n_buffers={self.n_buffers}, dirty_sync={self.dirty_sync}, "
            f"sides={sorted(self.caches)})"
        )
