"""The multiprocess cache-refresh pool.

One NSCaching batch refresh is embarrassingly parallel once the cache
row-space is sharded: every shard's slice of the batch reads and writes a
disjoint contiguous row range of the shared-memory storage
(:mod:`repro.parallel.sharded`), so the pool simply ships each slice —
anchor/relation ids plus storage rows, a few KiB — to a persistent worker
process and lets it run the *same* fused score-and-select kernel the
sequential path uses, scattering survivors straight back into shared
memory.  Worker processes are forked once and live for the whole
training run; the only per-batch cost beyond the task messages is one
``memcpy`` of the model parameters into a shared read-only block
(:meth:`RefreshPool.sync_params`), which keeps workers scoring with the
*current* embeddings exactly as Algorithm 3 requires.

Determinism: every task draws from its own generator seeded by
``(seed, mode, shard_id, epoch, batch)``.  Streams belong to *shards*,
not workers, so results are bit-identical across worker counts,
scheduling orders, and the in-process fallback (``use_processes=False``
or platforms without ``fork``) — two seeded runs always produce the same
caches and training trajectory.  Note this stream layout differs from
the sequential single-stream path: parallel refresh (>= 2 workers) is a
*deterministic sibling* of sequential training, not a bit-identical twin;
with 1 worker the sampler keeps the sequential path, which is
bit-identical to the plain ``array`` backend.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_module
import time
from dataclasses import dataclass

import numpy as np

from repro.core.array_cache import ArrayNegativeCache
from repro.core.strategies import (
    UpdateStrategy,
    select_cache_survivors,
    selection_changed_elements,
)
from repro.models.base import CANDIDATE_MODES, KGEModel
from repro.parallel.sharded import ShardedCacheStore, SharedArrayBlock

__all__ = ["RefreshPool", "ShardTask", "ShardResult"]

#: Stable ordinal per corruption mode, mixed into the per-task seed so the
#: head- and tail-cache refreshes of one shard draw independent streams.
_MODE_ORDINAL = {mode: i for i, mode in enumerate(CANDIDATE_MODES)}

#: Seconds between liveness checks while waiting on worker results.  A
#: slow-but-alive worker is waited on indefinitely (shard slices can be
#: arbitrarily expensive at scale); only a dead worker aborts the wait.
_RESULT_POLL_SECONDS = 5.0


@dataclass(frozen=True)
class ShardTask:
    """One shard's slice of one batch refresh (a unit of worker work)."""

    mode: str
    shard: int
    epoch: int
    batch: int
    anchors: np.ndarray
    relations: np.ndarray
    rows: np.ndarray  # storage rows, all inside the shard's range
    #: ``time.monotonic()`` at dispatch (0.0 = not stamped).  On Linux the
    #: monotonic clock is system-wide, so a forked worker can subtract it
    #: from its own reading to measure queue wait.
    enqueued_at: float = 0.0


@dataclass(frozen=True)
class ShardResult:
    """Counter deltas and timings a completed task reports back.

    ``seconds`` is the task's execution wall time inside the worker;
    ``queue_wait`` the dispatch→start latency (0.0 when the task was not
    stamped); ``worker_pid`` identifies which process ran it (the parent
    pid under the inline fallback).  The sampler folds these into its
    metrics registry, giving the per-shard refresh timings of the run
    log and ``/metrics``.
    """

    mode: str
    shard: int
    changed: int
    initialised: int
    n_rows: int = 0
    seconds: float = 0.0
    queue_wait: float = 0.0
    worker_pid: int = 0


@dataclass(frozen=True)
class _TaskFailure:
    """A worker-side exception, shipped back as text."""

    message: str


@dataclass
class _SideState:
    """Per-mode worker view: a row-addressed cache over the shared blocks."""

    view: ArrayNegativeCache
    n1: int


class _WorkerState:
    """Everything a refresh worker needs; built pre-fork, inherited.

    ``run`` is also the single-process fallback: the pool calls it inline
    when processes are disabled or unavailable, so both execution modes
    share one code path (and are therefore bit-identical).
    """

    def __init__(
        self,
        model: KGEModel,
        sides: dict[str, _SideState],
        n_entities: int,
        candidate_size: int,
        update_strategy: UpdateStrategy,
        seed: int,
    ) -> None:
        self.model = model
        self.sides = sides
        self.n_entities = n_entities
        self.candidate_size = candidate_size
        self.update_strategy = update_strategy
        self.seed = seed

    def task_rng(self, task: ShardTask) -> np.random.Generator:
        """The task's own stream: keyed by (seed, mode, shard, epoch, batch)."""
        entropy = (
            self.seed,
            _MODE_ORDINAL[task.mode],
            task.shard,
            task.epoch,
            task.batch,
        )
        return np.random.default_rng(np.random.SeedSequence(entropy))

    def run(self, task: ShardTask) -> ShardResult:
        """Fused Alg. 3 refresh of one shard slice, against shared storage."""
        queue_wait = (
            max(0.0, time.monotonic() - task.enqueued_at)
            if task.enqueued_at > 0.0
            else 0.0
        )
        started = time.perf_counter()
        side = self.sides[task.mode]
        cache = side.view
        cache.rng = self.task_rng(task)
        before_changed = cache.changed_elements
        before_init = cache.initialised_entries

        n1, n2 = side.n1, self.candidate_size
        union = np.empty((len(task.rows), n1 + n2), dtype=np.int64)
        union[:, :n1] = cache.gather(task.rows)  # materialises from task stream
        union[:, n1:] = cache.rng.integers(
            0, self.n_entities, size=(len(task.rows), n2), dtype=np.int64
        )
        scores = self.model.score_candidates(
            task.anchors, task.relations, union, task.mode
        )
        selection = select_cache_survivors(
            union, scores, n1, self.update_strategy, cache.rng,
            return_scores=cache.store_scores, return_selection=True,
        )
        changed = selection_changed_elements(selection, task.rows, n1)
        cache.scatter(task.rows, selection.ids, selection.scores, changed=changed)
        return ShardResult(
            task.mode,
            task.shard,
            cache.changed_elements - before_changed,
            cache.initialised_entries - before_init,
            n_rows=len(task.rows),
            seconds=time.perf_counter() - started,
            queue_wait=queue_wait,
            worker_pid=os.getpid(),
        )


def _worker_main(state: _WorkerState, tasks: object, results: object) -> None:
    """Worker process loop: drain tasks until the ``None`` sentinel."""
    while True:
        task = tasks.get()  # type: ignore[attr-defined]
        if task is None:
            return
        try:
            results.put(state.run(task))  # type: ignore[attr-defined]
        except Exception as exc:  # ship the failure, keep serving
            # Exception, not BaseException: KeyboardInterrupt/SystemExit
            # must terminate the worker normally, not masquerade as a
            # task failure.
            import traceback

            results.put(  # type: ignore[attr-defined]
                _TaskFailure(
                    f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
                )
            )


class RefreshPool:
    """Persistent worker processes running sharded cache refreshes.

    Parameters
    ----------
    model:
        The training model; its parameters are mirrored into a shared
        read-only block before every refresh (:meth:`sync_params`).
    caches:
        One :class:`~repro.parallel.sharded.ShardedCacheStore` per
        corruption mode (``"head"``/``"tail"``) — storage must already be
        attached (shards planned) before :meth:`start`.
    n_workers:
        Worker processes to fork.  Values ``< 2`` mean no processes: the
        pool runs every task inline (the deterministic fallback), as it
        also does when the platform lacks the ``fork`` start method.
    use_processes:
        Force the inline fallback with ``False`` (used by the parity
        tests to pin process execution against in-process execution).
    seed:
        Base entropy for the per-``(mode, shard, epoch, batch)`` task
        streams.
    """

    def __init__(
        self,
        model: KGEModel,
        caches: dict[str, ShardedCacheStore],
        *,
        n_entities: int,
        candidate_size: int,
        update_strategy: UpdateStrategy | str,
        seed: int,
        n_workers: int = 1,
        use_processes: bool = True,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        unknown = sorted(set(caches) - set(CANDIDATE_MODES))
        if unknown:
            raise ValueError(f"unknown corruption mode(s) {unknown}")
        self.model = model
        self.caches = dict(caches)
        self.n_entities = int(n_entities)
        self.candidate_size = int(candidate_size)
        self.update_strategy = UpdateStrategy(update_strategy)
        self.seed = int(seed)
        self.n_workers = int(n_workers)
        self._want_processes = bool(use_processes) and self.n_workers >= 2
        self._param_blocks: dict[str, SharedArrayBlock] = {}
        self._state: _WorkerState | None = None
        self._processes: list[mp.process.BaseProcess] = []
        self._tasks: object | None = None
        self._results: object | None = None
        self._started = False

    # -- lifecycle ------------------------------------------------------------
    @property
    def using_processes(self) -> bool:
        """Whether tasks actually run in worker processes (after start)."""
        return bool(self._processes)

    def start(self) -> "RefreshPool":
        """Allocate the shared parameter block and fork the workers."""
        if self._started:
            return self
        self._started = True

        # Mirror the model into shared memory: workers score through
        # read-only views of these blocks, so one parent-side memcpy per
        # refresh is all it takes to keep them on the current embeddings.
        worker_model = self.model.copy()
        for name, param in self.model.params.items():
            block = SharedArrayBlock(param.shape, param.dtype)
            assert block.array is not None
            np.copyto(block.array, param)
            self._param_blocks[name] = block
            view = block.array.view()
            view.setflags(write=False)
            worker_model.params[name] = view

        sides: dict[str, _SideState] = {}
        for mode, store in self.caches.items():
            layout = store.worker_layout()
            view = ArrayNegativeCache(
                layout["size"],  # type: ignore[arg-type]
                self.n_entities,
                rng=0,  # replaced per task
                store_scores=bool(layout["store_scores"]),
            )
            view.attach_storage(
                None,
                layout["ids"],  # type: ignore[arg-type]
                layout["live"],  # type: ignore[arg-type]
                layout["scores"],  # type: ignore[arg-type]
            )
            sides[mode] = _SideState(view=view, n1=int(layout["size"]))  # type: ignore[arg-type]
        self._state = _WorkerState(
            worker_model,
            sides,
            self.n_entities,
            self.candidate_size,
            self.update_strategy,
            self.seed,
        )

        if self._want_processes:
            try:
                ctx = mp.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                ctx = None
            if ctx is not None:
                self._tasks = ctx.Queue()
                self._results = ctx.Queue()
                for _ in range(self.n_workers):
                    process = ctx.Process(
                        target=_worker_main,
                        args=(self._state, self._tasks, self._results),
                        daemon=True,
                    )
                    process.start()
                    self._processes.append(process)
        return self

    def close(self) -> None:
        """Stop the workers and release the shared parameter block."""
        for _ in self._processes:
            assert self._tasks is not None
            self._tasks.put(None)  # type: ignore[attr-defined]
        for process in self._processes:
            process.join(timeout=10.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=5.0)
        self._processes = []
        if self._tasks is not None:
            self._tasks.close()  # type: ignore[attr-defined]
            self._tasks = None
        if self._results is not None:
            self._results.close()  # type: ignore[attr-defined]
            self._results = None
        self._state = None
        blocks, self._param_blocks = self._param_blocks, {}
        for block in blocks.values():
            block.release()
        self._started = False

    # -- per-refresh operations -------------------------------------------------
    def sync_params(self) -> None:
        """Copy the model's current parameters into the shared block."""
        for name, block in self._param_blocks.items():
            assert block.array is not None
            np.copyto(block.array, self.model.params[name])

    def refresh(self, tasks: list[ShardTask]) -> list[ShardResult]:
        """Run a batch's shard tasks (both modes together) and collect results.

        Blocks until every task completed; raises ``RuntimeError`` if a
        worker reported an exception or died.
        """
        if not self._started:
            self.start()
        assert self._state is not None
        self.sync_params()
        if not tasks:
            return []
        if not self._processes:
            return [self._state.run(task) for task in tasks]

        assert self._tasks is not None and self._results is not None
        for task in tasks:
            self._tasks.put(task)  # type: ignore[attr-defined]
        results: list[ShardResult] = []
        failure: _TaskFailure | None = None
        # Always drain one result per dispatched task, even after a
        # failure — a partially read queue would desync every later
        # refresh (stale results folded into the wrong batch's counters).
        for _ in tasks:
            result = self._next_result()
            if isinstance(result, _TaskFailure):
                failure = failure or result
            else:
                results.append(result)
        if failure is not None:
            raise RuntimeError(f"refresh worker failed:\n{failure.message}")
        return results

    def _next_result(self) -> "ShardResult | _TaskFailure":
        """One queued result; waits as long as every worker stays alive.

        A shard refresh can legitimately run for minutes at scale, so a
        slow worker is never a failure.  Any worker *death* (crash, OOM
        kill) fails the refresh by design: the parent cannot tell whether
        the dead worker held an unanswered task, and waiting on a result
        that will never arrive would hang training — fail fast with a
        clear error instead.
        """
        assert self._results is not None
        while True:
            try:
                return self._results.get(  # type: ignore[attr-defined]
                    timeout=_RESULT_POLL_SECONDS
                )
            except queue_module.Empty:  # pragma: no cover - timing dependent
                dead = [p.pid for p in self._processes if not p.is_alive()]
                if dead:
                    raise RuntimeError(
                        f"refresh worker(s) {dead} died without answering"
                    ) from None

    def __enter__(self) -> "RefreshPool":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        mode = "processes" if self.using_processes else "inline"
        return (
            f"RefreshPool(n_workers={self.n_workers}, mode={mode}, "
            f"sides={sorted(self.caches)})"
        )
