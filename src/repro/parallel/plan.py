"""Shard plans: contiguous partitions of a cache's storage row-space.

Cache rows are the unit of write ownership in the NSCaching refresh: a
batch's update touches exactly the storage rows of its cache keys (key
rows for the ``array`` scheme, bucket rows for ``bucketed-array`` — both
row-addressed).  A :class:`ShardPlan` splits that row-space into
``n_shards`` contiguous ranges; any two batch slices whose rows fall in
different shards touch disjoint storage and can therefore refresh
concurrently with zero locking.  The plan is the contract between the
:class:`~repro.parallel.sharded.ShardedCacheStore` (which owns the rows)
and the :class:`~repro.parallel.pool.RefreshPool` (which assigns each
shard's slice of a batch to a worker).

Ranges are near-equal by construction
(:func:`~repro.data.keyindex.even_ranges`); with the bucketed scheme the
hash spreads keys uniformly over buckets, so equal *row* ranges are also
approximately equal *load* ranges.
"""

from __future__ import annotations

import numpy as np

from repro.data.keyindex import even_ranges

__all__ = ["ShardPlan"]


class ShardPlan:
    """A partition of ``[0, n_rows)`` into contiguous shard ranges."""

    def __init__(self, n_rows: int, n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if n_rows < 0:
            raise ValueError(f"n_rows must be >= 0, got {n_rows}")
        self.n_rows = int(n_rows)
        self.n_shards = int(n_shards)
        #: ``n_shards + 1`` ascending bounds; shard ``s`` owns rows
        #: ``[bounds[s], bounds[s+1])``.
        self.bounds = even_ranges(self.n_rows, self.n_shards)

    # -- row → shard ---------------------------------------------------------
    def shard_of_rows(self, rows: np.ndarray) -> np.ndarray:
        """Owning shard id of each storage row; shape ``[len(rows)]``."""
        rows = np.asarray(rows, dtype=np.int64)
        if len(rows) and (rows.min() < 0 or rows.max() >= self.n_rows):
            raise ValueError(
                f"rows must lie in [0, {self.n_rows}), got range "
                f"[{rows.min()}, {rows.max()}]"
            )
        return np.searchsorted(self.bounds[1:], rows, side="right")

    def shard_bounds(self, shard: int) -> tuple[int, int]:
        """The ``[start, stop)`` row range shard ``shard`` owns."""
        if not 0 <= shard < self.n_shards:
            raise IndexError(f"shard must be in [0, {self.n_shards}), got {shard}")
        return int(self.bounds[shard]), int(self.bounds[shard + 1])

    def rows_per_shard(self) -> np.ndarray:
        """Storage rows owned by each shard; shape ``[n_shards]``."""
        return np.diff(self.bounds)

    # -- batch → shard slices --------------------------------------------------
    def split(self, rows: np.ndarray) -> list[tuple[int, np.ndarray]]:
        """Group a batch's storage rows by owning shard.

        Returns ``(shard_id, positions)`` pairs — ``positions`` indexes
        into ``rows`` (hence into the batch), in batch order, so repeated
        rows within one shard keep their write order.  Shards the batch
        does not touch are omitted; the positions of all pairs partition
        ``arange(len(rows))``.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if len(rows) == 0:
            return []
        shards = self.shard_of_rows(rows)
        order = np.argsort(shards, kind="stable")  # batch order within shard
        counts = np.bincount(shards, minlength=self.n_shards)
        out: list[tuple[int, np.ndarray]] = []
        start = 0
        for shard in np.flatnonzero(counts):
            stop = start + int(counts[shard])
            out.append((int(shard), order[start:stop]))
            start = stop
        return out

    def occupancy_of(self, rows: np.ndarray) -> np.ndarray:
        """How many of ``rows`` each shard owns; shape ``[n_shards]``."""
        return np.bincount(self.shard_of_rows(rows), minlength=self.n_shards)

    def __repr__(self) -> str:
        return f"ShardPlan(n_rows={self.n_rows}, n_shards={self.n_shards})"
