"""An LRU cache for repeated link-prediction queries.

The serving-side sibling of the training-time
:class:`~repro.core.cache.NegativeCache`: where that cache keeps the
hardest negatives per ``(h, r)`` / ``(r, t)`` key hot across epochs, this
one keeps *answered queries* hot across requests.  Real query streams are
heavily skewed (a few head entities dominate), so even a small capacity
absorbs most of the scoring work.

Thread-safe: the HTTP layer serves from a threading server, so every
operation takes an internal lock.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable

__all__ = ["QueryCache"]


class QueryCache:
    """A bounded mapping with least-recently-used eviction and hit stats."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.capacity = int(capacity)
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.Lock()
        #: Lookup counters since construction (or the last reset).
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable) -> object | None:
        """The cached value for ``key`` (refreshing its recency), else None."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            return None

    def put(self, key: Hashable, value: object) -> None:
        """Insert/refresh ``key``, evicting the LRU entry past capacity."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop all entries (counters are kept; see :meth:`reset_counters`)."""
        with self._lock:
            self._entries.clear()

    def reset_counters(self) -> None:
        """Zero the hit/miss/eviction counters."""
        with self._lock:
            self.hits = self.misses = self.evictions = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float | int]:
        """A JSON-safe counter snapshot for ``/stats``."""
        return {
            "capacity": self.capacity,
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"QueryCache(capacity={self.capacity}, entries={len(self)}, "
            f"hit_rate={self.hit_rate:.2f})"
        )
