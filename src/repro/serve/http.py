"""A stdlib JSON-over-HTTP front end for :class:`PredictionEngine`.

No web framework — ``http.server`` with a threading server keeps the
dependency surface at zero while still overlapping request parsing with
scoring.  Routes:

* ``POST /predict`` — body ``{"queries": [...]}`` (or a single query
  object); answers ``{"results": [...]}``;
* ``GET /healthz`` — liveness probe with uptime, the snapshot summary
  and the cache eviction/entry counters;
* ``GET /stats`` — engine/cache counters (the cache block is always
  present, zeroed when the cache is disabled);
* ``GET /metrics`` — the engine's registry in Prometheus text exposition
  format (version 0.0.4); ``/metrics?format=json`` returns the same
  instruments as JSON.

``HEAD`` is supported on every GET route (load balancers probe with it):
same status and headers, no body.  Malformed JSON or queries answer 400
with ``{"error": ...}``; unknown routes answer 404.

Every request — error paths included — is recorded through
:meth:`~repro.serve.engine.PredictionEngine.observe_request`, so
``/metrics`` exports ``http_requests_total{route,status}`` and a
per-route latency histogram.  Requests slower than the handler's
``slow_request_seconds`` are logged to stderr.  When the engine carries a
:class:`~repro.obs.trace.Tracer`, each request gets a ``request`` span
(category ``serve``) enclosing the engine's parse/cache/score spans.
"""

from __future__ import annotations

import json
import sys
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.serve.engine import PredictionEngine

__all__ = ["make_server", "run_server", "serve_forever"]

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Largest accepted request body; a batch of queries is tiny, so anything
#: bigger is a mistake or abuse.
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Routes the server knows; anything else is labelled ``other`` in the
#: request metrics so unknown-path probes cannot explode label cardinality.
KNOWN_ROUTES = frozenset(("/predict", "/healthz", "/stats", "/metrics"))

#: Default slow-request threshold (seconds).
DEFAULT_SLOW_REQUEST_SECONDS = 1.0


def _route_label(path: str) -> str:
    route = urlsplit(path).path
    return route if route in KNOWN_ROUTES else "other"


def make_handler(
    engine: PredictionEngine,
    *,
    slow_request_seconds: float = DEFAULT_SLOW_REQUEST_SECONDS,
) -> type[BaseHTTPRequestHandler]:
    """A request-handler class bound to ``engine``."""

    class PredictionHandler(BaseHTTPRequestHandler):
        server_version = "repro-serve/1.0"
        protocol_version = "HTTP/1.1"
        # Without TCP_NODELAY, Nagle + delayed ACK adds ~40ms to every
        # keep-alive request — catastrophic for small JSON bodies.
        disable_nagle_algorithm = True

        # -- routing --------------------------------------------------------
        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            self._dispatch("GET")

        def do_HEAD(self) -> None:  # noqa: N802
            self._dispatch("HEAD")

        def do_POST(self) -> None:  # noqa: N802
            self._dispatch("POST")

        def _dispatch(self, method: str) -> None:
            """Route one request, then record it whatever happened.

            The accounting lives in the ``finally`` so 400/404/500 paths
            (and even a handler bug that re-raises after replying 500)
            still hit the counters, the latency histogram, the
            slow-request log and — when tracing is on — the request span.
            """
            self._body_read = False
            self._head_only = method == "HEAD"
            self._status = 500  # overwritten by _send; a crash before it counts as 500
            route = _route_label(self.path)
            tracer = engine.tracer
            span = (
                tracer.start_span(
                    "request", "serve", args={"route": route, "method": method}
                )
                if tracer is not None
                else None
            )
            started = time.perf_counter()
            try:
                if method == "POST":
                    self._handle_post()
                else:
                    self._handle_get()
            finally:
                elapsed = time.perf_counter() - started
                slow = elapsed >= slow_request_seconds
                if slow:
                    print(
                        f"slow request: {method} {self.path} -> {self._status} "
                        f"in {elapsed * 1000.0:.1f} ms",
                        file=sys.stderr,
                    )
                engine.observe_request(route, self._status, elapsed, slow=slow)
                if span is not None:
                    if span.args is not None:
                        span.args["status"] = self._status
                    span.end()

        def _handle_get(self) -> None:
            url = urlsplit(self.path)
            if url.path == "/healthz":
                self._reply(200, engine.health())
            elif url.path == "/stats":
                self._reply(200, engine.stats())
            elif url.path == "/metrics":
                registry = engine.sync_metrics()
                formats = parse_qs(url.query).get("format", [])
                if formats and formats[-1] == "json":
                    self._reply(200, registry.as_json())
                else:
                    self._reply_text(200, registry.to_prometheus())
            else:
                self._reply(404, {"error": f"unknown path {self.path!r}"})

        def _handle_post(self) -> None:
            if self.path != "/predict":
                self._reply(404, {"error": f"unknown path {self.path!r}"})
                return
            try:
                payload = self._read_json()
                queries = self._queries_of(payload)
                results = engine.predict(queries)
            except ValueError as exc:
                self._reply(400, {"error": str(exc)})
                return
            except Exception:  # noqa: BLE001 - a bug must not drop the socket
                self._reply(500, {"error": "internal server error"})
                raise  # still reaches handle_error for the operator's log
            self._reply(200, {"results": results})

        # -- plumbing -------------------------------------------------------
        def _read_json(self) -> Any:
            try:
                length = int(self.headers.get("Content-Length", "0"))
            except ValueError:
                raise ValueError("bad Content-Length header") from None
            if length <= 0:
                raise ValueError("empty request body")
            if length > MAX_BODY_BYTES:
                raise ValueError(f"request body over {MAX_BODY_BYTES} bytes")
            data = self.rfile.read(length)
            self._body_read = True
            try:
                return json.loads(data.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ValueError(f"invalid JSON body: {exc}") from None

        @staticmethod
        def _queries_of(payload: Any) -> list[dict[str, Any]]:
            if isinstance(payload, dict) and "queries" in payload:
                queries = payload["queries"]
                if not isinstance(queries, list) or not queries:
                    raise ValueError("'queries' must be a non-empty list")
                return queries
            if isinstance(payload, dict):
                return [payload]  # single bare query object
            raise ValueError("body must be a query object or {'queries': [...]}")

        def _reply(self, status: int, body: dict[str, Any]) -> None:
            self._send(status, json.dumps(body).encode("utf-8"), "application/json")

        def _reply_text(self, status: int, body: str) -> None:
            self._send(status, body.encode("utf-8"), PROMETHEUS_CONTENT_TYPE)

        def _send(self, status: int, data: bytes, content_type: str) -> None:
            self._status = status
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            # HEAD keeps the Content-Length the GET would have sent (RFC
            # 9110 §9.3.2) but omits the body bytes themselves.
            self.send_header("Content-Length", str(len(data)))
            # Replying with the request body still unread would leave its
            # bytes on a keep-alive socket, where they would be parsed as
            # the *next* request line — close the connection instead.
            try:
                pending = int(self.headers.get("Content-Length") or 0)
            except ValueError:
                pending = 1
            if pending > 0 and not getattr(self, "_body_read", False):
                self.send_header("Connection", "close")
                self.close_connection = True
            self.end_headers()
            if not getattr(self, "_head_only", False):
                self.wfile.write(data)

        def log_message(self, format: str, *args: Any) -> None:
            """Quiet by default; the CLI prints its own line per request."""

    return PredictionHandler


def make_server(
    engine: PredictionEngine,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    slow_request_seconds: float = DEFAULT_SLOW_REQUEST_SECONDS,
) -> ThreadingHTTPServer:
    """A ready-to-run threading HTTP server (``port=0`` picks a free port)."""
    return ThreadingHTTPServer(
        (host, port),
        make_handler(engine, slow_request_seconds=slow_request_seconds),
    )


def run_server(server: ThreadingHTTPServer) -> None:
    """Blocking serve loop; returns cleanly on KeyboardInterrupt."""
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()


def serve_forever(
    engine: PredictionEngine,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    slow_request_seconds: float = DEFAULT_SLOW_REQUEST_SECONDS,
) -> None:
    """Bind and serve ``engine`` until interrupted (one-call convenience)."""
    run_server(
        make_server(engine, host, port, slow_request_seconds=slow_request_seconds)
    )
