"""Online serving: turn a trained checkpoint into a query engine.

The subsystem the ROADMAP's "serve heavy traffic" north star asks for,
layered strictly on top of the reproduction (nothing here is needed to
train or evaluate):

* :mod:`repro.serve.snapshot` — :class:`EmbeddingSnapshot`, contiguous /
  memory-mapped parameter tables loaded from either checkpoint format;
* :mod:`repro.serve.topk` — :class:`TopKScorer`, vectorised filtered
  top-k retrieval sharing the evaluation protocol's candidate masks;
* :mod:`repro.serve.cache` — :class:`QueryCache`, an LRU over answered
  queries (the serving twin of the paper's negative cache);
* :mod:`repro.serve.engine` — :class:`PredictionEngine`, parse/batch/
  cache orchestration;
* :mod:`repro.serve.http` — the stdlib JSON endpoint behind
  ``repro serve``.

Quickstart::

    from repro.serve import PredictionEngine

    engine = PredictionEngine.from_checkpoint("transe.npz", dataset)
    engine.predict_one(head=12, relation=3, k=10)
"""

from repro.serve.cache import QueryCache
from repro.serve.engine import PredictionEngine
from repro.serve.http import make_server, run_server, serve_forever
from repro.serve.snapshot import EmbeddingSnapshot
from repro.serve.topk import TopKResult, TopKScorer

__all__ = [
    "EmbeddingSnapshot",
    "PredictionEngine",
    "QueryCache",
    "TopKResult",
    "TopKScorer",
    "make_server",
    "run_server",
    "serve_forever",
]
