"""Embedding snapshots: trained parameter tables ready for serving.

:class:`EmbeddingSnapshot` is the read-only artefact the query engine
serves from.  It loads either checkpoint format of
:mod:`repro.models.persistence` — a compressed ``.npz`` (decompressed into
contiguous heap arrays) or an exported snapshot directory (memory-mapped,
so entity tables larger than RAM page in on demand) — and rebuilds the
scoring model on first use.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.models.base import KGEModel
from repro.models.persistence import (
    build_model_from_state,
    load_checkpoint_state,
    load_snapshot,
    model_meta,
)

__all__ = ["EmbeddingSnapshot"]


class EmbeddingSnapshot:
    """A loaded set of embedding tables plus the metadata to score with them.

    Parameters
    ----------
    meta:
        Constructor metadata (``model``, ``n_entities``, ...), the schema of
        :func:`repro.models.persistence.model_meta`.
    arrays:
        Parameter tables keyed by name; memory-mapped or in-heap.
    source:
        Where the snapshot came from (path string, for ``/stats``).
    mmapped:
        Whether the arrays are backed by memory maps.
    """

    def __init__(
        self,
        meta: dict[str, object],
        arrays: dict[str, np.ndarray],
        *,
        source: str = "<memory>",
        mmapped: bool = False,
    ) -> None:
        self.meta = dict(meta)
        self.arrays = dict(arrays)
        self.source = source
        self.mmapped = bool(mmapped)
        self._model: KGEModel | None = None

    # -- construction -------------------------------------------------------
    @classmethod
    def load(cls, path: str | Path) -> "EmbeddingSnapshot":
        """Load from either checkpoint format, auto-detected.

        A directory is read as an exported snapshot (memory-mapped); a file
        is read as a ``save_model`` ``.npz`` archive.
        """
        path = Path(path)
        if path.is_dir():
            meta, arrays = load_snapshot(path, mmap=True)
            return cls(meta, arrays, source=str(path), mmapped=True)
        meta, arrays = load_checkpoint_state(path)
        arrays = {
            name: np.ascontiguousarray(array) for name, array in arrays.items()
        }
        return cls(meta, arrays, source=str(path), mmapped=False)

    @classmethod
    def from_model(cls, model: KGEModel) -> "EmbeddingSnapshot":
        """Snapshot a live model (copies the tables; serving stays stable)."""
        snapshot = cls(
            model_meta(model),
            {name: array.copy() for name, array in model.params.items()},
        )
        return snapshot

    # -- metadata -----------------------------------------------------------
    @property
    def model_name(self) -> str:
        """Registry name of the scoring function."""
        return str(self.meta["model"])

    @property
    def n_entities(self) -> int:
        """Number of entities the tables cover."""
        return int(self.meta["n_entities"])  # type: ignore[arg-type]

    @property
    def n_relations(self) -> int:
        """Number of relations the tables cover."""
        return int(self.meta["n_relations"])  # type: ignore[arg-type]

    @property
    def dim(self) -> int:
        """Embedding dimension."""
        return int(self.meta["dim"])  # type: ignore[arg-type]

    def nbytes(self) -> int:
        """Total bytes across all parameter tables."""
        return int(sum(a.nbytes for a in self.arrays.values()))

    def describe(self) -> dict[str, object]:
        """A JSON-safe summary for ``/stats`` and logs."""
        return {
            "model": self.model_name,
            "n_entities": self.n_entities,
            "n_relations": self.n_relations,
            "dim": self.dim,
            "bytes": self.nbytes(),
            "source": self.source,
            "mmapped": self.mmapped,
        }

    # -- scoring ------------------------------------------------------------
    def model(self) -> KGEModel:
        """The rebuilt scoring model (constructed once, then cached).

        ``load_state_dict`` copies the tables into the model's own arrays,
        so scoring never mutates (or depends on the lifetime of) the
        memory maps.
        """
        if self._model is None:
            self._model = build_model_from_state(
                self.meta, {name: np.asarray(a) for name, a in self.arrays.items()}
            )
        return self._model

    def __repr__(self) -> str:
        return (
            f"EmbeddingSnapshot({self.model_name}, n_entities={self.n_entities}, "
            f"dim={self.dim}, mmapped={self.mmapped})"
        )
