"""Vectorised filtered top-k scoring for link-prediction queries.

The serving counterpart of :mod:`repro.eval.ranking`: where the evaluator
ranks one *known* answer among all entities, :class:`TopKScorer` returns
the *best* ``k`` candidate entities for a query ``(h, r, ?)`` or
``(?, r, t)``.  Both use the same bulk scoring paths
(:meth:`KGEModel.score_all_tails` / ``score_all_heads``) and the same
filtered-candidate masks (:mod:`repro.eval.filters`), so a served top-1 is
exactly the entity the offline protocol would rank first.

Top-k extraction is ``np.argpartition`` (O(E) per query) followed by a
sort of the ``k`` survivors — not a full O(E log E) sort per query.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import KGDataset
from repro.eval.filters import head_filter_masks, tail_filter_masks
from repro.models.base import KGEModel

__all__ = ["TopKResult", "TopKScorer"]


@dataclass
class TopKResult:
    """Ranked candidates for one query, best first.

    ``entities``/``scores`` may hold fewer than the requested ``k`` entries
    when filtering leaves fewer valid candidates.  A plain (unfrozen)
    dataclass on purpose: frozen ``__init__`` goes through
    ``object.__setattr__`` per field, which is measurable when a batched
    call constructs one result per row.
    """

    direction: str  # "tail" for (h, r, ?), "head" for (?, r, t)
    entities: np.ndarray  # int64 [<=k]
    scores: np.ndarray  # float64 [<=k]
    filtered: bool

    def to_json(self) -> dict[str, object]:
        """A JSON-safe dict (used by the HTTP layer).

        ``tolist()`` converts whole arrays at C speed — this sits on the
        per-request hot path.
        """
        return {
            "direction": self.direction,
            "entities": self.entities.tolist(),
            "scores": self.scores.tolist(),
            "filtered": self.filtered,
        }


class TopKScorer:
    """Batched top-k candidate retrieval over all entities.

    Parameters
    ----------
    model:
        Any :class:`KGEModel` (typically rebuilt from a snapshot).
    dataset:
        Supplies the known-triple filter indexes.  Optional; without it
        only unfiltered queries are possible.
    chunk:
        Row-chunk size handed to the bulk scorers (bounds temporaries).
    """

    def __init__(
        self,
        model: KGEModel,
        dataset: KGDataset | None = None,
        *,
        chunk: int = 64,
    ) -> None:
        if chunk <= 0:
            raise ValueError(f"chunk must be > 0, got {chunk}")
        self.model = model
        self.dataset = dataset
        self.chunk = int(chunk)

    # -- public API ---------------------------------------------------------
    def top_tails(
        self,
        h: np.ndarray,
        r: np.ndarray,
        k: int,
        *,
        filtered: bool = True,
        keep: np.ndarray | None = None,
    ) -> list[TopKResult]:
        """Top-k tail candidates for each query ``(h[i], r[i], ?)``.

        ``keep[i]`` (optional) is an entity re-admitted past the filter —
        the evaluation semantics, where the queried true answer itself is
        never masked.
        """
        h = np.asarray(h, dtype=np.int64).ravel()
        r = np.asarray(r, dtype=np.int64).ravel()
        self._check_ids(h, self.model.n_entities, "head")
        self._check_ids(r, self.model.n_relations, "relation")
        scores = self.model.score_all_tails(h, r, chunk=self.chunk)
        masks = self._masks("tail", h, r, filtered)
        return self._extract("tail", scores, masks, keep, k, filtered)

    def top_heads(
        self,
        r: np.ndarray,
        t: np.ndarray,
        k: int,
        *,
        filtered: bool = True,
        keep: np.ndarray | None = None,
    ) -> list[TopKResult]:
        """Top-k head candidates for each query ``(?, r[i], t[i])``."""
        r = np.asarray(r, dtype=np.int64).ravel()
        t = np.asarray(t, dtype=np.int64).ravel()
        self._check_ids(t, self.model.n_entities, "tail")
        self._check_ids(r, self.model.n_relations, "relation")
        scores = self.model.score_all_heads(r, t, chunk=self.chunk)
        masks = self._masks("head", r, t, filtered)
        return self._extract("head", scores, masks, keep, k, filtered)

    # -- internals ----------------------------------------------------------
    @staticmethod
    def _check_ids(ids: np.ndarray, bound: int, kind: str) -> None:
        if len(ids) and (ids.min() < 0 or ids.max() >= bound):
            raise ValueError(f"{kind} id out of range [0, {bound})")

    def _masks(
        self, direction: str, a: np.ndarray, b: np.ndarray, filtered: bool
    ) -> list[np.ndarray] | None:
        if not filtered:
            return None
        if self.dataset is None:
            raise ValueError("filtered queries need a dataset with filter indexes")
        if direction == "tail":
            return tail_filter_masks(self.dataset, a, b)
        return head_filter_masks(self.dataset, a, b)

    def _extract(
        self,
        direction: str,
        scores: np.ndarray,
        masks: list[np.ndarray] | None,
        keep: np.ndarray | None,
        k: int,
        filtered: bool,
    ) -> list[TopKResult]:
        if k <= 0:
            raise ValueError(f"k must be > 0, got {k}")
        scores = np.asarray(scores, dtype=np.float64)
        n = scores.shape[1]
        if masks is not None:
            # One flat fancy assignment for the whole batch instead of a
            # per-row loop — the mask write is on the serving hot path.
            lengths = [len(cols) for cols in masks]
            if any(lengths):
                scores = scores.copy()
                rows = np.repeat(np.arange(len(masks)), lengths)
                cols = np.concatenate([c for c in masks if len(c)])
                kept = None
                if keep is not None:
                    keep = np.asarray(keep, dtype=np.int64).ravel()
                    kept = scores[np.arange(len(masks)), keep].copy()
                scores[rows, cols] = -np.inf
                if kept is not None:
                    scores[np.arange(len(masks)), keep] = kept
        neg = -scores  # negate once; argpartition/argsort both want ascending
        kk = min(int(k), n)
        rows = np.arange(len(scores))[:, None]
        if kk < n:
            # Ascending-id order inside the partition + a stable sort below
            # makes the result deterministic; ties *within* the partition
            # break toward the lowest entity id (ties spanning the
            # partition boundary keep whichever members argpartition
            # selected).
            part = np.sort(np.argpartition(neg, kk - 1, axis=1)[:, :kk], axis=1)
        else:
            part = np.broadcast_to(np.arange(n), scores.shape)
        # Broadcast fancy indexing beats take_along_axis (which rebuilds a
        # full index grid per call) on this hot path.
        part_neg = neg[rows, part]
        order = np.argsort(part_neg, axis=1, kind="stable")
        top = part[rows, order].astype(np.int64, copy=False)
        top_scores = -part_neg[rows, order]
        # Masked candidates sit at -inf, sorted to the tail of each row;
        # counting finite entries once replaces a per-row isfinite scan.
        valid_counts = np.sum(np.isfinite(top_scores), axis=1)
        return [
            TopKResult(
                direction=direction,
                entities=top[i, : valid_counts[i]],
                scores=top_scores[i, : valid_counts[i]],
                filtered=filtered,
            )
            for i in range(len(scores))
        ]
