"""The query engine: snapshot + top-k scorer + query cache.

:class:`PredictionEngine` is the transport-independent core of the serving
subsystem.  It parses link-prediction queries (dicts, the JSON wire
format), answers cache hits immediately, groups the misses by
``(direction, k, filtered)`` and scores each group in one vectorised
:class:`~repro.serve.topk.TopKScorer` call — the batching that
``benchmarks/bench_serve_throughput.py`` measures.
"""

from __future__ import annotations

import threading
import time
from contextlib import nullcontext
from pathlib import Path
from typing import Any, ContextManager, Mapping, Sequence

import numpy as np

from repro.data.dataset import KGDataset
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Tracer
from repro.serve.cache import QueryCache
from repro.serve.snapshot import EmbeddingSnapshot
from repro.serve.topk import TopKResult, TopKScorer

__all__ = ["PredictionEngine"]

_QUERY_FIELDS = frozenset(("head", "relation", "tail", "k", "filtered"))

#: Shared no-op context for the untraced path (no per-call allocation).
_NULL_CONTEXT: ContextManager[None] = nullcontext()


class PredictionEngine:
    """Answers batches of ``(h, r, ?)`` / ``(?, r, t)`` queries.

    Parameters
    ----------
    snapshot:
        The embedding tables to serve.
    dataset:
        Optional; enables the filtered protocol and label decoding.
    top_k:
        Default ``k`` for queries that do not specify one.
    max_k:
        Upper bound accepted from a query's ``k`` — the cap that keeps one
        request from demanding a full-entity ranked dump (response size,
        argsort work and cached memory all scale with ``k``).
    cache_capacity:
        LRU entries to keep; ``0`` disables the query cache.
    chunk:
        Scoring chunk size passed to :class:`TopKScorer`.
    metrics:
        The registry backing ``/metrics``; the engine creates its own by
        default.  Internal counters stay plain ints under the engine's
        lock — they are mirrored into the registry at export time
        (:meth:`sync_metrics`); only the latency histograms are observed
        per request (they take their own lock, so the threading server is
        safe).
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; when attached,
        ``predict()`` records parse/cache/score spans (category
        ``serve``) and the HTTP layer adds a per-request parent span.
        ``None`` (the default) keeps the serve path span-free.
    """

    def __init__(
        self,
        snapshot: EmbeddingSnapshot,
        dataset: KGDataset | None = None,
        *,
        top_k: int = 10,
        max_k: int = 1000,
        cache_capacity: int = 1024,
        chunk: int = 64,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if top_k <= 0:
            raise ValueError(f"top_k must be > 0, got {top_k}")
        if max_k < top_k:
            raise ValueError(f"max_k ({max_k}) must be >= top_k ({top_k})")
        if dataset is not None and (
            dataset.n_entities != snapshot.n_entities
            or dataset.n_relations != snapshot.n_relations
        ):
            raise ValueError(
                f"snapshot has {snapshot.n_entities} entities / "
                f"{snapshot.n_relations} relations but the dataset has "
                f"{dataset.n_entities} / {dataset.n_relations}; they must match"
            )
        self.snapshot = snapshot
        self.dataset = dataset
        self.top_k = int(top_k)
        self.max_k = int(max_k)
        self.scorer = TopKScorer(snapshot.model(), dataset, chunk=chunk)
        self.cache = QueryCache(cache_capacity) if cache_capacity > 0 else None
        self._lock = threading.Lock()
        self._started_at = time.time()
        #: Total queries answered (cache hits included).
        self.queries_served = 0
        #: Vectorised scorer calls issued for cache misses.
        self.scoring_batches = 0
        self.tracer = tracer
        # HTTP request accounting (fed by the HTTP layer's
        # observe_request); plain ints under the engine lock, mirrored as
        # http_requests_total / http_slow_requests_total at export time.
        self._http_requests: dict[tuple[str, str], int] = {}
        self._http_slow: dict[str, int] = {}
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # The engine always owns a registry (serving is explicitly opted
        # into, unlike the hot training loop), so these chains are safe.
        self._predict_seconds = self.metrics.histogram(  # repro-lint: ignore[RPL003] -- engine always owns a registry
            "serve_predict_seconds", "wall time of one predict() batch"
        )
        self._batch_queries = self.metrics.histogram(  # repro-lint: ignore[RPL003] -- engine always owns a registry
            "serve_batch_queries",
            "queries per predict() batch",
            bounds=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0),
        )

    @classmethod
    def from_checkpoint(
        cls,
        path: str | Path,
        dataset: KGDataset | None = None,
        **kwargs: Any,
    ) -> "PredictionEngine":
        """Build an engine straight from a ``.npz`` checkpoint or snapshot dir."""
        return cls(EmbeddingSnapshot.load(path), dataset, **kwargs)

    # -- query answering ----------------------------------------------------
    def predict(self, queries: Sequence[Mapping[str, Any]]) -> list[dict[str, Any]]:
        """Answer a batch of queries, preserving order.

        Each query holds ``relation`` plus exactly one of ``head`` (tail
        prediction) or ``tail`` (head prediction); optional ``k`` and
        ``filtered`` override the engine defaults.  Raises ``ValueError``
        on a malformed query (the HTTP layer maps that to a 400).
        """
        started = time.perf_counter()
        tracer = self.tracer
        with (
            tracer.start_span("parse", "serve", args={"queries": len(queries)})
            if tracer is not None
            else _NULL_CONTEXT
        ):
            parsed = [self._parse(q) for q in queries]
        answers: list[dict[str, Any] | None] = [None] * len(parsed)

        # Cache pass.
        misses: list[int] = []
        with (
            tracer.start_span("cache", "serve")
            if tracer is not None
            else _NULL_CONTEXT
        ):
            for i, (direction, anchor, relation, k, filtered) in enumerate(parsed):
                key = (direction, anchor, relation, k, filtered)
                hit = self.cache.get(key) if self.cache is not None else None
                if hit is not None:
                    answers[i] = self._render(parsed[i], hit, cached=True)
                else:
                    misses.append(i)

        # Score the misses, one vectorised call per (direction, k, filtered).
        groups: dict[tuple[str, int, bool], list[int]] = {}
        for i in misses:
            direction, _, _, k, filtered = parsed[i]
            groups.setdefault((direction, k, filtered), []).append(i)
        score_span = (
            tracer.start_span("score", "serve", args={"misses": len(misses)})
            if tracer is not None and misses
            else None
        )
        for (direction, k, filtered), idxs in groups.items():
            anchors = np.array([parsed[i][1] for i in idxs], dtype=np.int64)
            relations = np.array([parsed[i][2] for i in idxs], dtype=np.int64)
            if direction == "tail":
                results = self.scorer.top_tails(
                    anchors, relations, k, filtered=filtered
                )
            else:
                results = self.scorer.top_heads(
                    relations, anchors, k, filtered=filtered
                )
            with self._lock:
                self.scoring_batches += 1
            for i, result in zip(idxs, results):
                direction_i, anchor, relation, k_i, filtered_i = parsed[i]
                if self.cache is not None:
                    # Copy the row slices: a result fresh from the scorer
                    # views its whole batch's arrays, which a cache entry
                    # must not pin.
                    self.cache.put(
                        (direction_i, anchor, relation, k_i, filtered_i),
                        TopKResult(
                            result.direction,
                            result.entities.copy(),
                            result.scores.copy(),
                            result.filtered,
                        ),
                    )
                answers[i] = self._render(parsed[i], result, cached=False)
        if score_span is not None:
            score_span.end()

        with self._lock:
            self.queries_served += len(parsed)
        self._predict_seconds.observe(time.perf_counter() - started)
        self._batch_queries.observe(float(len(parsed)))
        return [a for a in answers if a is not None]

    def predict_one(self, **query: Any) -> dict[str, Any]:
        """Answer a single keyword-style query (see :meth:`predict`)."""
        return self.predict([query])[0]

    def observe_request(
        self, route: str, status: int, seconds: float, *, slow: bool = False
    ) -> None:
        """Record one HTTP request (any method, any status) for ``/metrics``.

        Called by the HTTP layer after every response — error paths
        included, so 400/404/500 rates are visible.  The latency
        histogram takes its own lock; the per-``(route, status)`` counts
        stay plain ints under the engine lock and are exported as
        ``http_requests_total`` by :meth:`sync_metrics`.
        """
        self.metrics.histogram(  # repro-lint: ignore[RPL003] -- engine always owns a registry
            "http_request_seconds",
            "wall time of one HTTP request",
            labels={"route": route},
        ).observe(seconds)
        key = (route, str(int(status)))
        with self._lock:
            self._http_requests[key] = self._http_requests.get(key, 0) + 1
            if slow:
                self._http_slow[route] = self._http_slow.get(route, 0) + 1

    # -- introspection ------------------------------------------------------
    def cache_stats(self) -> dict[str, float | int]:
        """The query-cache counters; all-zero when the cache is disabled.

        Always a dict with the same keys, so ``/stats`` and ``/healthz``
        consumers never branch on the cache being configured.
        """
        if self.cache is not None:
            return self.cache.stats()
        return {
            "capacity": 0, "entries": 0, "hits": 0, "misses": 0,
            "evictions": 0, "hit_rate": 0.0,
        }

    def stats(self) -> dict[str, Any]:
        """A JSON-safe operational snapshot for ``/stats``."""
        return {
            "uptime_seconds": time.time() - self._started_at,
            "queries_served": self.queries_served,
            "scoring_batches": self.scoring_batches,
            "default_top_k": self.top_k,
            "dataset": self.dataset.name if self.dataset is not None else None,
            "snapshot": self.snapshot.describe(),
            "cache": self.cache_stats(),
        }

    def health(self) -> dict[str, Any]:
        """The ``/healthz`` body: liveness plus the load-bearing counters.

        Shares the snapshot metadata and cache eviction counter with
        ``/stats`` so probes and dashboards read one consistent story.
        """
        cache = self.cache_stats()
        return {
            "status": "ok",
            "uptime_seconds": time.time() - self._started_at,
            "queries_served": self.queries_served,
            "snapshot": self.snapshot.describe(),
            "cache_evictions": cache["evictions"],
            "cache_entries": cache["entries"],
        }

    def sync_metrics(self) -> MetricsRegistry:
        """Mirror the engine's counters into the registry and return it.

        Called by the ``/metrics`` route per scrape.  The engine's plain
        int counters (guarded by its own lock) stay the source of truth;
        ``set_total`` keeps the exported series cumulative.
        """
        registry = self.metrics
        with self._lock:
            queries, batches = self.queries_served, self.scoring_batches
            http_requests = dict(self._http_requests)
            http_slow = dict(self._http_slow)
        for (route, status), count in sorted(http_requests.items()):
            registry.counter(
                "http_requests_total",
                "HTTP requests by route and status code",
                labels={"route": route, "status": status},
            ).set_total(float(count))
        for route, count in sorted(http_slow.items()):
            registry.counter(
                "http_slow_requests_total",
                "requests slower than the serve layer's slow threshold",
                labels={"route": route},
            ).set_total(float(count))
        registry.counter(
            "serve_queries_total", "queries answered (cache hits included)"
        ).set_total(queries)
        registry.counter(
            "serve_scoring_batches_total", "vectorised scorer calls"
        ).set_total(batches)
        registry.gauge(
            "serve_uptime_seconds", "seconds since the engine started"
        ).set(time.time() - self._started_at)
        cache = self.cache_stats()
        for name in ("hits", "misses", "evictions"):
            registry.counter(
                f"serve_cache_{name}_total", f"query-cache {name}"
            ).set_total(float(cache[name]))
        registry.gauge(
            "serve_cache_entries", "query-cache entries currently held"
        ).set(float(cache["entries"]))
        return registry

    # -- internals ----------------------------------------------------------
    def _parse(
        self, query: Mapping[str, Any]
    ) -> tuple[str, int, int, int, bool]:
        if not isinstance(query, Mapping):
            raise ValueError("each query must be a JSON object")
        unknown = [key for key in query if key not in _QUERY_FIELDS]
        if unknown:
            raise ValueError(f"unknown query fields: {sorted(unknown)}")
        if "relation" not in query:
            raise ValueError("query needs a 'relation'")
        head, tail = query.get("head"), query.get("tail")
        if (head is None) == (tail is None):
            raise ValueError(
                "query needs exactly one of 'head' (tail prediction) or "
                "'tail' (head prediction)"
            )
        relation = self._id(query["relation"], "relation")
        k = query.get("k", self.top_k)
        if isinstance(k, bool) or not isinstance(k, (int, np.integer)):
            raise ValueError(f"k must be an integer, got {k!r}")
        k = int(k)
        if k <= 0:
            raise ValueError(f"k must be > 0, got {k}")
        if k > self.max_k:
            raise ValueError(f"k must be <= {self.max_k}, got {k}")
        filtered = query.get("filtered", self.dataset is not None)
        if not isinstance(filtered, bool):
            raise ValueError(f"filtered must be a boolean, got {filtered!r}")
        if filtered and self.dataset is None:
            raise ValueError("filtered queries need the engine built with a dataset")
        if head is not None:
            return ("tail", self._id(head, "entity"), relation, k, filtered)
        return ("head", self._id(tail, "entity"), relation, k, filtered)

    def _id(self, value: Any, kind: str) -> int:
        """Resolve an int id or (with a vocabulary) a string label."""
        if isinstance(value, str):
            if self.dataset is None:
                raise ValueError(f"{kind} labels need the engine built with a dataset")
            vocab = self.dataset.vocab
            try:
                if kind == "entity":
                    return vocab.entity_id(value)
                return vocab.relation_id(value)
            except KeyError:
                raise ValueError(f"unknown {kind} label {value!r}") from None
        if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
            raise ValueError(f"{kind} must be an int id or string label")
        value = int(value)
        bound = (
            self.snapshot.n_entities if kind == "entity" else self.snapshot.n_relations
        )
        if not 0 <= value < bound:
            raise ValueError(f"{kind} id {value} out of range [0, {bound})")
        return value

    def _render(
        self,
        parsed: tuple[str, int, int, int, bool],
        result: TopKResult,
        *,
        cached: bool,
    ) -> dict[str, Any]:
        direction, anchor, relation, k, _filtered = parsed
        answer = result.to_json()
        answer["relation"] = relation
        answer["k"] = k
        answer["cached"] = cached
        answer["head" if direction == "tail" else "tail"] = anchor
        if self.dataset is not None:
            entities = self.dataset.vocab.entities
            answer["labels"] = [entities[e] for e in answer["entities"]]
        return answer
