"""The per-experiment index of DESIGN.md, as code.

Maps every paper table/figure to the benchmark file that regenerates it and
the modules it exercises, so `describe_experiments()` can print the full
reproduction map (and tests can assert the map is complete).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.tables import format_table

__all__ = ["Experiment", "EXPERIMENTS", "describe_experiments"]


@dataclass(frozen=True)
class Experiment:
    """One paper artefact and how this repository regenerates it."""

    exp_id: str
    artefact: str
    workload: str
    modules: tuple[str, ...]
    bench: str


EXPERIMENTS: dict[str, Experiment] = {
    exp.exp_id: exp
    for exp in (
        Experiment(
            "T1",
            "Table I: complexity comparison",
            "TransE; measured per-batch sampling cost and extra parameters/memory",
            ("repro.sampling", "repro.core.nscaching"),
            "benchmarks/bench_table1_complexity.py",
        ),
        Experiment(
            "T2",
            "Table II: dataset statistics",
            "the four synthetic benchmark analogues",
            ("repro.data.benchmarks",),
            "benchmarks/bench_table2_datasets.py",
        ),
        Experiment(
            "T4",
            "Table IV: link prediction, 5 scoring functions x 4 datasets",
            "Bernoulli / KBGAN(+-pretrain) / NSCaching(+-pretrain); filtered MRR/MR/Hits@10",
            ("repro.train", "repro.eval.ranking", "repro.core"),
            "benchmarks/bench_table4_link_prediction.py",
        ),
        Experiment(
            "T5",
            "Table V: triplet classification",
            "TransD & ComplEx on WN18RR-like / FB15K237-like",
            ("repro.eval.classification",),
            "benchmarks/bench_table5_triplet_classification.py",
        ),
        Experiment(
            "T6",
            "Table VI: cache contents drift (self-paced learning)",
            "FB13-like typed KG; tail-cache snapshots across epochs",
            ("repro.data.fb13", "repro.train.callbacks"),
            "benchmarks/bench_table6_selfpaced.py",
        ),
        Experiment(
            "F1",
            "Figure 1: CCDF of negative score distances",
            "Bernoulli-TransD on WN18-like; across epochs and across triples",
            ("repro.eval.ccdf",),
            "benchmarks/bench_fig1_score_distribution.py",
        ),
        Experiment(
            "F2",
            "Figures 2-3: convergence (MRR / Hits@10 vs clock time), TransD",
            "Bernoulli vs KBGAN vs NSCaching on the four datasets",
            ("repro.train.callbacks",),
            "benchmarks/bench_fig2_3_convergence_transd.py",
        ),
        Experiment(
            "F4",
            "Figures 4-5: convergence (MRR / Hits@10 vs clock time), ComplEx",
            "Bernoulli vs KBGAN vs NSCaching on the four datasets",
            ("repro.train.callbacks",),
            "benchmarks/bench_fig4_5_convergence_complex.py",
        ),
        Experiment(
            "F6",
            "Figure 6: sampling / update strategy ablations",
            "TransD on WN18-like; uniform/IS/top sampling; IS/top update",
            ("repro.core.strategies",),
            "benchmarks/bench_fig6_strategies.py",
        ),
        Experiment(
            "F7",
            "Figure 7: repeat ratio and non-zero-loss ratio vs epoch",
            "sampling-strategy exploration/exploitation balance",
            ("repro.core.stats",),
            "benchmarks/bench_fig7_exploration.py",
        ),
        Experiment(
            "F8",
            "Figure 8: changed cache elements and NZL vs epoch",
            "update-strategy exploration/exploitation balance",
            ("repro.core.stats", "repro.core.cache"),
            "benchmarks/bench_fig8_cache_updates.py",
        ),
        Experiment(
            "F9",
            "Figure 9: sensitivity to N1 and N2",
            "N1 sweep at N2 fixed; N2 sweep at N1 fixed (TransD, WN18-like)",
            ("repro.core.nscaching",),
            "benchmarks/bench_fig9_sensitivity.py",
        ),
        Experiment(
            "F10",
            "Figure 10: gradient l2 norms vs epoch",
            "Bernoulli vs NSCaching on WN18RR-like (TransD & ComplEx)",
            ("repro.train.trainer",),
            "benchmarks/bench_fig10_gradient_norms.py",
        ),
        Experiment(
            "X1",
            "Extension: memory-bounded hashed cache (paper SVI future work)",
            "quality vs bucket budget",
            ("repro.core.hashed",),
            "benchmarks/bench_ext_hashed_cache.py",
        ),
        Experiment(
            "X2",
            "Extension: self-adversarial sampling comparison",
            "RotatE-style score-weighted sampling vs NSCaching",
            ("repro.sampling.self_adversarial",),
            "benchmarks/bench_ext_self_adversarial.py",
        ),
        Experiment(
            "X3",
            "Extension: serving throughput (batched vs one-at-a-time)",
            "queries/sec and p50/p99 latency across batch sizes via repro.serve",
            ("repro.serve.engine", "repro.serve.topk"),
            "benchmarks/bench_serve_throughput.py",
        ),
        Experiment(
            "X4",
            "Extension: cache-engine throughput (array vs dict backend)",
            "gather/CE-scatter op mix and full sample+update across batch sizes and N1/N2",
            ("repro.core.array_cache", "repro.core.cache", "repro.data.keyindex"),
            "benchmarks/bench_cache_engine.py",
        ),
        Experiment(
            "X5",
            "Extension: fused score-and-select cache refresh",
            "update() ms/batch per scoring family: generic reference vs fused "
            "score_candidates kernels at N1=N2=50, batch 1024",
            ("repro.models.base", "repro.core.nscaching", "repro.core.strategies"),
            "benchmarks/bench_fused_refresh.py",
        ),
        Experiment(
            "X6",
            "Extension: memory-bounded bucketed array cache (SVI on the fast path)",
            "allocation/collision trade-off across bucket budgets and fused "
            "update() throughput vs the unbounded array backend at N1=N2=50",
            ("repro.core.bucketed", "repro.data.keyindex", "repro.core.store"),
            "benchmarks/bench_bucketed_cache.py",
        ),
        Experiment(
            "X7",
            "Extension: sharded cache row-space + multiprocess epoch refresh",
            "update() throughput over an n_shards x refresh_workers grid, "
            "including the 1-worker overhead floor of shared-memory storage",
            ("repro.parallel.plan", "repro.parallel.sharded",
             "repro.parallel.pool"),
            "benchmarks/bench_sharded_refresh.py",
        ),
        Experiment(
            "X8",
            "Extension: observability overhead on the update() hot loop",
            "update() throughput with metrics off / on / on + phase spans, "
            "interleaved passes; instrumented-on must stay within 3% of off",
            ("repro.obs.registry", "repro.core.nscaching", "repro.utils.timer"),
            "benchmarks/bench_obs_overhead.py",
        ),
        Experiment(
            "X9",
            "Extension: dirty-row parameter sync + overlapped refresh pipeline",
            "full-copy vs dirty-row publish bytes/time at growing entity "
            "counts, overlap-hidden refresh wall time, refresh_period grid",
            ("repro.parallel.dirty", "repro.parallel.pool",
             "repro.train.trainer"),
            "benchmarks/bench_async_refresh.py",
        ),
        Experiment(
            "X10",
            "Extension: sampled ranking evaluation on million-entity graphs",
            "sampled vs full filtered ranking: agreement at growing K on a "
            "small graph, eval queries/sec and speedup vs the extrapolated "
            "full-ranking cost at E=1M, K=500",
            ("repro.eval.sampled", "repro.eval.filters", "repro.models.base"),
            "benchmarks/bench_sampled_eval.py",
        ),
    )
}


def describe_experiments() -> str:
    """The reproduction map as an ASCII table."""
    rows = [
        (exp.exp_id, exp.artefact, exp.bench) for exp in EXPERIMENTS.values()
    ]
    return format_table(
        ("id", "paper artefact", "regenerated by"),
        rows,
        title="NSCaching reproduction: experiment index",
    )
