"""Shared experiment runners used by every benchmark.

The paper tunes hyper-parameters once per (scoring function, dataset) under
Bernoulli sampling and then holds them fixed across samplers (§IV-B2).
``MODEL_DEFAULTS`` records the grid winners found for the synthetic
benchmark analogues; :func:`run_setting` reproduces one Table IV cell
(dataset x model x sampler x {scratch, pretrain}).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.data.benchmarks import load_benchmark
from repro.data.dataset import KGDataset
from repro.eval.protocol import evaluate
from repro.models import make_model
from repro.models.base import KGEModel
from repro.sampling import make_sampler
from repro.sampling.base import NegativeSampler
from repro.sampling.kbgan import KBGANSampler
from repro.train.config import TrainConfig
from repro.train.pretrain import pretrain
from repro.train.trainer import Trainer

__all__ = [
    "MODEL_DEFAULTS",
    "SettingResult",
    "build_model",
    "build_sampler",
    "run_setting",
    "train_and_eval",
]

#: Tuned per-model training defaults (validation-MRR grid winners on the
#: synthetic analogues; the paper's §IV-B2 protocol).
MODEL_DEFAULTS: dict[str, dict[str, Any]] = {
    "TransE": {"learning_rate": 0.01, "margin": 2.0},
    "TransH": {"learning_rate": 0.01, "margin": 2.0},
    "TransD": {"learning_rate": 0.01, "margin": 2.0},
    "TransR": {"learning_rate": 0.01, "margin": 2.0},
    "DistMult": {"learning_rate": 0.1, "l2_weight": 0.001},
    "ComplEx": {"learning_rate": 0.1, "l2_weight": 0.01},
    "RESCAL": {"learning_rate": 0.05, "l2_weight": 0.01},
    "HolE": {"learning_rate": 0.1, "l2_weight": 0.001},
    "SimplE": {"learning_rate": 0.1, "l2_weight": 0.001},
}

#: Default embedding dimension for benchmark runs (paper grid: 20..200).
DEFAULT_DIM = 32


def build_model(
    model_name: str, dataset: KGDataset, dim: int = DEFAULT_DIM, seed: int = 0
) -> KGEModel:
    """Instantiate a registry model sized for ``dataset``."""
    return make_model(model_name, dataset.n_entities, dataset.n_relations, dim, rng=seed)


def build_sampler(sampler_name: str, **kwargs: Any) -> NegativeSampler:
    """Instantiate a registry sampler (thin wrapper for symmetry)."""
    return make_sampler(sampler_name, **kwargs)


def make_config(
    model_name: str, epochs: int, seed: int = 0, **overrides: Any
) -> TrainConfig:
    """The tuned config for ``model_name``, with per-experiment overrides."""
    defaults = dict(MODEL_DEFAULTS.get(model_name, {}))
    defaults.update(overrides)
    return TrainConfig(epochs=epochs, seed=seed, **defaults)


@dataclass
class SettingResult:
    """Outcome of one (dataset, model, sampler, regime) setting."""

    dataset: str
    model: str
    sampler: str
    regime: str  # "scratch" | "pretrain" | "baseline"
    metrics: dict[str, float]
    train_seconds: float
    extras: dict[str, Any] = field(default_factory=dict)

    def row(self, keys: Sequence[str] = ("mrr", "mr", "hits@10")) -> list[object]:
        """A report row: sampler+regime label then the chosen metrics."""
        label = self.sampler if self.regime == "baseline" else f"{self.sampler}+{self.regime}"
        return [label, *(self.metrics.get(k, float("nan")) for k in keys)]


def train_and_eval(
    model: KGEModel,
    dataset: KGDataset,
    sampler: NegativeSampler,
    config: TrainConfig,
    *,
    callbacks: Sequence[object] = (),
    split: str = "test",
) -> tuple[dict[str, float], Trainer]:
    """Train and return (filtered link-prediction metrics, trainer).

    The trainer is returned live for introspection; callers that hand in
    pool-backed samplers (``sharded-array`` + refresh workers) own the
    matching ``trainer.close()``.
    """
    trainer = Trainer(model, dataset, sampler, config, callbacks=callbacks)
    trainer.run()
    return evaluate(model, dataset, split, hits_at=(1, 3, 10)), trainer


def run_setting(
    dataset: KGDataset | str,
    model_name: str,
    sampler_name: str,
    *,
    regime: str = "scratch",
    epochs: int = 40,
    pretrain_epochs: int = 10,
    dim: int = DEFAULT_DIM,
    seed: int = 0,
    sampler_kwargs: dict[str, Any] | None = None,
    config_overrides: dict[str, Any] | None = None,
    pretrained_state: dict[str, np.ndarray] | None = None,
    callbacks: Sequence[object] = (),
) -> SettingResult:
    """Reproduce one Table IV cell.

    ``regime``:

    * ``"baseline"`` — the sampler is the Bernoulli reference; trained for
      ``epochs`` from scratch;
    * ``"scratch"`` — sampler trained from Xavier initialisation;
    * ``"pretrain"`` — model warm-started from ``pretrained_state`` (or a
      fresh Bernoulli pretrain of ``pretrain_epochs``), then trained with
      the sampler; KBGAN's generator is warm-started too (§IV-B1).
    """
    if isinstance(dataset, str):
        dataset = load_benchmark(dataset, seed=seed)
    if regime not in ("baseline", "scratch", "pretrain"):
        raise ValueError(f"unknown regime {regime!r}")

    model = build_model(model_name, dataset, dim=dim, seed=seed)
    config = make_config(model_name, epochs, seed=seed, **(config_overrides or {}))

    if regime == "pretrain":
        if pretrained_state is not None:
            model.load_state_dict(pretrained_state)
        else:
            pretrain(model, dataset, pretrain_epochs, config)

    sampler = build_sampler(sampler_name, **(sampler_kwargs or {}))
    if regime == "pretrain" and isinstance(sampler, KBGANSampler):
        # The generator is warm-started with the pretrained TransE-shaped
        # tables when shapes allow (paper warm-starts it with TransE); the
        # request is applied when the trainer binds the sampler.
        sampler.warm_start_generator(model)

    metrics, trainer = train_and_eval(
        model, dataset, sampler, config, callbacks=callbacks
    )
    # The trainer is kept in extras for introspection only; release any
    # sampler-held resources (refresh pools, shared-memory caches) now.
    trainer.close()
    return SettingResult(
        dataset=dataset.name,
        model=model_name,
        sampler=sampler.name,
        regime=regime,
        metrics=metrics,
        train_seconds=trainer.train_seconds,
        extras={"model_obj": model, "trainer": trainer},
    )
