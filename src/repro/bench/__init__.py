"""Experiment harness: shared plumbing for the paper's tables and figures.

* :mod:`repro.bench.tables` — fixed-width ASCII table rendering;
* :mod:`repro.bench.harness` — one-call "train this model with this
  sampler on this dataset" runners with the tuned per-model defaults
  (the §IV-B2 grid winners);
* :mod:`repro.bench.registry` — experiment ids mapped to the benchmark
  that regenerates them (the DESIGN.md per-experiment index, in code).
"""

from repro.bench.harness import (
    MODEL_DEFAULTS,
    build_model,
    build_sampler,
    run_setting,
    train_and_eval,
)
from repro.bench.registry import EXPERIMENTS, describe_experiments
from repro.bench.tables import format_table, render_metrics_row

__all__ = [
    "EXPERIMENTS",
    "MODEL_DEFAULTS",
    "build_model",
    "build_sampler",
    "describe_experiments",
    "format_table",
    "render_metrics_row",
    "run_setting",
    "train_and_eval",
]
