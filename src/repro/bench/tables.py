"""ASCII table rendering for benchmark reports.

Every benchmark prints the rows the corresponding paper table/figure
reports, in a fixed-width layout that survives ``tee`` into a text file.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "render_metrics_row", "format_float"]


def format_float(value: float, precision: int = 4) -> str:
    """Compact float formatting: NaN-safe, trims integer-valued floats."""
    if value != value:  # NaN
        return "--"
    if abs(value - round(value)) < 1e-9 and abs(value) >= 10:
        return str(int(round(value)))
    return f"{value:.{precision}f}"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render rows as a boxed fixed-width table string."""
    rendered_rows: list[list[str]] = []
    for row in rows:
        rendered: list[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(format_float(cell, precision))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    parts: list[str] = []
    if title:
        parts.append(title)
    parts.append(separator)
    parts.append(line(list(headers)))
    parts.append(separator)
    for row in rendered_rows:
        parts.append(line(row))
    parts.append(separator)
    return "\n".join(parts)


def render_metrics_row(
    label: str, metrics: dict[str, float], keys: Sequence[str] = ("mrr", "mr", "hits@10")
) -> list[object]:
    """A table row of ``label`` plus the selected metric values."""
    return [label, *(metrics.get(key, float("nan")) for key in keys)]
