"""Command-line interface.

The subcommands cover the workflow end to end, from data to serving::

    python -m repro datasets
    python -m repro train --dataset WN18RR --model TransE --sampler NSCaching \
        --epochs 40 --metrics-out run.jsonl --trace-out trace.jsonl --out transe.npz
    python -m repro evaluate --checkpoint transe.npz --dataset WN18RR --top-k 5
    python -m repro serve --checkpoint transe.npz --dataset WN18RR --port 8080
    python -m repro metrics run.jsonl
    python -m repro trace summary trace.jsonl
    python -m repro trace export trace.jsonl --chrome trace.json
    python -m repro experiments

Dataset names are the paper's (``WN18``, ``WN18RR``, ``FB15K``,
``FB15K237``); they resolve to the seeded synthetic analogues.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.bench.harness import build_model, make_config
from repro.bench.registry import describe_experiments
from repro.bench.tables import format_table
from repro.core.store import cache_backend_names
from repro.data.benchmarks import BENCHMARKS, load_benchmark
from repro.eval.per_relation import per_category_link_prediction
from repro.eval.protocol import evaluate
from repro.models import MODEL_REGISTRY
from repro.models.persistence import load_model, save_model
from repro.sampling import SAMPLER_NAMES, make_sampler
from repro.train.trainer import Trainer

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NSCaching (ICDE 2019) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    datasets = sub.add_parser("datasets", help="print Table II analogue statistics")
    datasets.add_argument("--scale", type=float, default=0.3)
    datasets.add_argument("--seed", type=int, default=0)

    train = sub.add_parser("train", help="train a model and report test metrics")
    train.add_argument("--dataset", required=True, choices=sorted(BENCHMARKS))
    train.add_argument("--model", required=True, choices=sorted(MODEL_REGISTRY))
    train.add_argument("--sampler", default="NSCaching", choices=SAMPLER_NAMES)
    train.add_argument("--epochs", type=int, default=40)
    train.add_argument("--dim", type=int, default=32)
    train.add_argument("--scale", type=float, default=0.3)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--learning-rate", type=float, default=None)
    train.add_argument("--margin", type=float, default=None)
    train.add_argument("--l2-weight", type=float, default=None)
    train.add_argument("--cache-size", type=int, default=50, help="N1")
    train.add_argument("--candidate-size", type=int, default=50, help="N2")
    train.add_argument("--lazy-epochs", type=int, default=0, help="lazy-update n")
    train.add_argument(
        "--cache-backend", default="array", choices=cache_backend_names(),
        help="NSCaching cache storage: vectorised array (default), dict, "
             "the memory-bounded bucketed-array / hashed backends, or "
             "sharded-array (shared memory, enables --refresh-workers)",
    )
    train.add_argument(
        "--n-buckets", type=_positive_int, default=None, metavar="K",
        help="bucket rows for the memory-bounded backends (bucketed-array/"
             "hashed, or sharded-array which then uses the bucketed inner "
             "scheme); cache memory becomes O(K * N1) regardless of the "
             "number of distinct keys",
    )
    train.add_argument(
        "--n-shards", type=_positive_int, default=None, metavar="S",
        help="contiguous shards the sharded-array backend splits the cache "
             "row-space into (default: the worker count); shards refresh "
             "concurrently without locking",
    )
    train.add_argument(
        "--refresh-workers", type=_positive_int, default=1, metavar="W",
        help="worker processes for cache refreshes (requires "
             "--cache-backend sharded-array); 1 keeps the sequential "
             "refresh, bit-identical to the array backend",
    )
    train.add_argument(
        "--refresh-period", type=_positive_int, default=1, metavar="K",
        help="refresh caches only every K-th batch of an epoch (default 1 "
             "= every batch); the lazy within-epoch schedule — divides "
             "refresh and parameter-sync cost by K while caches go at "
             "most K-1 batches stale",
    )
    train.add_argument(
        "--refresh-overlap", action="store_true",
        help="overlap the pooled cache refresh with the gradient/optimizer "
             "step (dispatch against a double-buffered pre-step parameter "
             "snapshot, collect at the next batch); requires "
             "--refresh-workers >= 2, results stay bit-identical",
    )
    train.add_argument(
        "--no-dirty-sync", action="store_true",
        help="ship full parameter copies to refresh workers every batch "
             "instead of only optimizer-touched rows (bit-identical, "
             "slower; for A/B timing)",
    )
    train.add_argument(
        "--no-fused-refresh", action="store_true",
        help="use the unfused reference cache-refresh path (bit-identical, "
             "slower; for debugging and A/B timing)",
    )
    train.add_argument(
        "--profile", action="store_true",
        help="report per-phase timing (sample/score/cache-update/"
             "score-candidates/…) after training",
    )
    train.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="stream a JSONL run log (one record per epoch: loss, phase "
             "seconds, cache churn/survivor fraction); summarise it later "
             "with `repro metrics PATH`",
    )
    train.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="record a span timeline (trainer phases, refresh dispatch, "
             "worker shard tasks) as JSONL; analyse with `repro trace "
             "summary PATH` or export for Perfetto with `repro trace "
             "export PATH --chrome out.json`",
    )
    train.add_argument("--out", default=None, help="checkpoint path (.npz)")
    train.add_argument(
        "--per-category", action="store_true",
        help="also print the 1-1/1-N/N-1/N-N Hits@10 breakdown",
    )

    ev = sub.add_parser("evaluate", help="evaluate a saved checkpoint")
    ev.add_argument("--checkpoint", required=True)
    ev.add_argument("--dataset", required=True, choices=sorted(BENCHMARKS))
    ev.add_argument("--scale", type=float, default=0.3)
    ev.add_argument("--seed", type=int, default=0)
    ev.add_argument("--split", default="test", choices=("valid", "test"))
    ev.add_argument("--per-category", action="store_true")
    ev.add_argument(
        "--top-k", type=int, default=0, metavar="K",
        help="also print top-K tail predictions for a few sample triples",
    )
    ev.add_argument(
        "--sampled", type=_positive_int, default=None, metavar="K",
        help="use the sampled protocol: rank each query against K filtered "
             "random negatives plus the true entity instead of all "
             "entities — O(K) per query, the practical choice on "
             "million-entity graphs; metrics are comparable across runs "
             "that share K and --eval-seed",
    )
    ev.add_argument(
        "--eval-seed", type=int, default=0, metavar="S",
        help="seed for the sampled protocol's negative draws (default 0)",
    )

    serve = sub.add_parser("serve", help="serve a checkpoint over JSON HTTP")
    serve.add_argument("--checkpoint", required=True,
                       help=".npz checkpoint or exported snapshot directory")
    serve.add_argument("--dataset", required=True, choices=sorted(BENCHMARKS))
    serve.add_argument("--scale", type=float, default=0.3)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--top-k", type=int, default=10, help="default k per query")
    serve.add_argument("--max-k", type=int, default=1000,
                       help="largest k a query may request")
    serve.add_argument("--cache-capacity", type=int, default=1024,
                       help="LRU query-cache entries (0 disables)")
    serve.add_argument(
        "--slow-request-ms", type=float, default=1000.0, metavar="MS",
        help="log requests slower than this to stderr and count them in "
             "http_slow_requests_total (default 1000)",
    )
    serve.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="record per-request spans (request/parse/cache/score) and "
             "write them as a JSONL trace when the server stops",
    )

    metrics = sub.add_parser(
        "metrics", help="summarise a JSONL run log written by train --metrics-out"
    )
    metrics.add_argument("run_log", help="path to the run log (.jsonl)")
    metrics.add_argument(
        "--tail", type=_positive_int, default=None, metavar="N",
        help="only print the last N epoch rows (works on in-flight logs)",
    )

    trace = sub.add_parser(
        "trace", help="analyse a span trace written by train/serve --trace-out"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_summary = trace_sub.add_parser(
        "summary",
        help="per-category span counts, wall/self seconds, and how much "
             "worker refresh time the overlap pipeline hid behind the "
             "gradient/optimizer step",
    )
    trace_summary.add_argument("trace_file", help="path to the trace (.jsonl)")
    trace_export = trace_sub.add_parser(
        "export",
        help="convert a trace to Chrome trace-event JSON "
             "(chrome://tracing, Perfetto)",
    )
    trace_export.add_argument("trace_file", help="path to the trace (.jsonl)")
    trace_export.add_argument(
        "--chrome", required=True, metavar="OUT",
        help="output path for the trace-event JSON",
    )

    lint = sub.add_parser(
        "lint",
        help="run the repo's contract-aware static analysis (RPL rules)",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"], metavar="PATH",
        help="files or directories to check (default: src)",
    )
    lint.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    lint.add_argument(
        "--ignore", default=None, metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    lint.add_argument(
        "--format", dest="output_format", default="text",
        choices=("text", "json"),
        help="findings as human-readable text (default) or stable JSON",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table (code, name, invariant) and exit",
    )

    sub.add_parser("experiments", help="print the paper-artefact index")
    return parser


def _cmd_datasets(args: argparse.Namespace) -> int:
    rows = []
    for name in BENCHMARKS:
        summary = load_benchmark(name, seed=args.seed, scale=args.scale).summary()
        rows.append(
            (name, summary["entities"], summary["relations"],
             summary["train"], summary["valid"], summary["test"])
        )
    print(
        format_table(
            ("dataset", "#entity", "#relation", "#train", "#valid", "#test"),
            rows,
            title=f"benchmark analogues (scale={args.scale}, seed={args.seed})",
        )
    )
    return 0


def _sampler_kwargs(args: argparse.Namespace) -> dict[str, object]:
    if args.sampler == "NSCaching":
        kwargs: dict[str, object] = {
            "cache_size": args.cache_size,
            "candidate_size": args.candidate_size,
            "lazy_epochs": args.lazy_epochs,
            "cache_backend": args.cache_backend,
            "fused": not args.no_fused_refresh,
            "refresh_workers": args.refresh_workers,
            "refresh_period": args.refresh_period,
            "refresh_overlap": args.refresh_overlap,
            "dirty_sync": not args.no_dirty_sync,
        }
        options: dict[str, object] = {}
        if args.n_buckets is not None:
            options["n_buckets"] = args.n_buckets
        if args.cache_backend == "sharded-array":
            # Shard the row-space at least as finely as the worker count
            # so every worker can own work; --n-shards overrides.
            options["n_shards"] = (
                args.n_shards if args.n_shards is not None else args.refresh_workers
            )
            if args.n_buckets is not None:
                options["inner"] = "bucketed-array"
        elif args.n_shards is not None:
            # Rejected by option validation with the clean exit-2 path.
            options["n_shards"] = args.n_shards
        if options:
            kwargs["cache_options"] = options
        return kwargs
    if args.sampler in ("KBGAN", "SelfAdv"):
        return {"candidate_size": args.candidate_size}
    return {}


def _print_metrics(metrics: dict[str, float]) -> None:
    print(
        format_table(
            ("metric", "value"),
            sorted(metrics.items()),
        )
    )


def _print_breakdown(model, dataset, split: str) -> None:
    breakdown = per_category_link_prediction(model, dataset, split)
    print(
        format_table(
            ("category", "#triples", "head Hits@10", "tail Hits@10"),
            breakdown.rows(),
            title="per-relation-category breakdown",
        )
    )


def _cmd_train(args: argparse.Namespace) -> int:
    if args.sampler != "NSCaching" and (
        args.refresh_workers != 1
        or args.n_shards is not None
        or args.refresh_period != 1
        or args.refresh_overlap
    ):
        # Args-only check: fail loudly (and before any data/model work)
        # rather than silently training single-process.
        print(
            "error: --refresh-workers/--n-shards/--refresh-period/"
            "--refresh-overlap only apply to the NSCaching sampler, got "
            f"--sampler {args.sampler}",
            file=sys.stderr,
        )
        return 2
    dataset = load_benchmark(args.dataset, seed=args.seed, scale=args.scale)
    print(f"dataset {dataset.name}: {dataset.summary()}")
    overrides = {}
    if args.learning_rate is not None:
        overrides["learning_rate"] = args.learning_rate
    if args.margin is not None:
        overrides["margin"] = args.margin
    if args.l2_weight is not None:
        overrides["l2_weight"] = args.l2_weight
    config = make_config(args.model, args.epochs, seed=args.seed, **overrides)
    model = build_model(args.model, dataset, dim=args.dim, seed=args.seed)
    try:
        sampler = make_sampler(args.sampler, **_sampler_kwargs(args))
        trainer = Trainer(
            model, dataset, sampler, config,
            profile=args.profile, metrics_out=args.metrics_out,
            trace_out=args.trace_out,
        )
    except ValueError as exc:
        # e.g. --n-buckets/--n-shards with a backend that does not take
        # them, a value < 1, or --refresh-workers without sharded caches.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        trainer.run()
        print(f"trained {args.epochs} epochs in {trainer.train_seconds:.1f}s")
        if args.profile:
            phases = trainer.profile_report()
            total = sum(phases.values()) or 1.0
            print(
                format_table(
                    ("phase", "seconds", "% of hot loop"),
                    [
                        (name, round(seconds, 4), round(100 * seconds / total, 1))
                        for name, seconds in phases.items()
                    ],
                    title="per-phase timing (training hot loop)",
                )
            )
            cache_stats = trainer.cache_report()
            if cache_stats:
                print(
                    format_table(
                        ("cache stat", "value"),
                        sorted(cache_stats.items()),
                        title="cache introspection",
                    )
                )
    finally:
        trainer.close()  # stop refresh workers, release shared memory
    if args.metrics_out:
        print(f"run log written to {args.metrics_out}")
    if args.trace_out:
        print(f"trace written to {args.trace_out}")
    _print_metrics(evaluate(model, dataset, "test"))
    if args.per_category:
        _print_breakdown(model, dataset, "test")
    if args.out:
        path = save_model(model, args.out)
        print(f"checkpoint written to {path}")
    return 0


def _print_top_k(model, dataset, split: str, k: int, n_samples: int = 5) -> None:
    """Top-k tail predictions for the first few ``split`` triples."""
    from repro.data.triples import HEAD, REL, TAIL
    from repro.serve.topk import TopKScorer

    triples = getattr(dataset, split)[:n_samples]
    if len(triples) == 0:
        return
    scorer = TopKScorer(model, dataset)
    results = scorer.top_tails(
        triples[:, HEAD], triples[:, REL], k, keep=triples[:, TAIL]
    )
    vocab = dataset.vocab
    rows = []
    for triple, result in zip(triples, results):
        h, r, t = (int(x) for x in triple)
        predictions = ", ".join(
            ("*" if int(e) == t else "") + vocab.entity_label(int(e))
            for e in result.entities
        )
        rows.append(
            (f"({vocab.entity_label(h)}, {vocab.relation_label(r)}, ?)",
             vocab.entity_label(t), predictions)
        )
    print(
        format_table(
            ("query", "true tail", f"top-{k} filtered predictions (* = true)"),
            rows,
            title=f"sample tail predictions ({split} split)",
        )
    )


def _checkpoint_mismatch(model, dataset, args: argparse.Namespace) -> bool:
    if model.n_entities == dataset.n_entities:
        return False
    print(
        f"error: checkpoint has {model.n_entities} entities but the "
        f"dataset (scale={args.scale}, seed={args.seed}) has "
        f"{dataset.n_entities}; pass the --scale/--seed used at training",
        file=sys.stderr,
    )
    return True


def _cmd_evaluate(args: argparse.Namespace) -> int:
    dataset = load_benchmark(args.dataset, seed=args.seed, scale=args.scale)
    model = load_model(args.checkpoint)
    if _checkpoint_mismatch(model, dataset, args):
        return 2
    if args.sampled is not None:
        _print_metrics(
            evaluate(
                model,
                dataset,
                args.split,
                mode="sampled",
                num_negatives=args.sampled,
                seed=args.eval_seed,
            )
        )
    else:
        _print_metrics(evaluate(model, dataset, args.split))
    if args.per_category:
        _print_breakdown(model, dataset, args.split)
    if args.top_k > 0:
        _print_top_k(model, dataset, args.split, args.top_k)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import (
        EmbeddingSnapshot,
        PredictionEngine,
        make_server,
        run_server,
    )

    dataset = load_benchmark(args.dataset, seed=args.seed, scale=args.scale)
    try:
        snapshot = EmbeddingSnapshot.load(args.checkpoint)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load checkpoint {args.checkpoint!r}: {exc}",
              file=sys.stderr)
        return 2
    tracer = None
    if args.trace_out is not None:
        from repro.obs.trace import Tracer

        tracer = Tracer()
    try:
        engine = PredictionEngine(
            snapshot,
            dataset,
            top_k=args.top_k,
            max_k=args.max_k,
            cache_capacity=args.cache_capacity,
            tracer=tracer,
        )
    except ValueError as exc:
        print(f"error: {exc}; pass the --scale/--seed used at training",
              file=sys.stderr)
        return 2
    try:
        server = make_server(
            engine, args.host, args.port,
            slow_request_seconds=args.slow_request_ms / 1000.0,
        )
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2
    print(f"serving {snapshot.describe()} on http://{args.host}:{args.port}")
    print(
        "routes: POST /predict (+ GET/HEAD /healthz /stats /metrics)  "
        "(Ctrl-C stops)"
    )
    # SIGTERM (supervisors, `kill`) takes the same clean path as Ctrl-C
    # so a --trace-out trace is still flushed below.
    import signal

    def _terminate(signum: int, frame: object) -> None:
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)
    run_server(server)
    if tracer is not None:
        from repro.obs.trace import write_trace

        write_trace(args.trace_out, tracer.records())
        print(f"trace written to {args.trace_out}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs.runlog import read_run_log_lenient
    from repro.obs.summary import (
        EPOCH_COLUMNS,
        epoch_rows,
        phase_totals,
        run_overview,
    )

    try:
        records, warnings = read_run_log_lenient(args.run_log)
    except OSError as exc:
        print(f"error: cannot read run log: {exc}", file=sys.stderr)
        return 2
    if not records:
        # Nothing valid to summarise: the strict failure (with the first
        # anomaly, if any) is the only useful answer.
        detail = f": {warnings[0]}" if warnings else ""
        print(f"error: {args.run_log} holds no records{detail}", file=sys.stderr)
        return 2
    for warning in warnings:
        print(f"warning: {warning}", file=sys.stderr)
    overview = run_overview(records)
    print(
        format_table(
            ("field", "value"),
            sorted(overview.items()),
            title=f"run overview ({args.run_log})",
        )
    )
    rows = epoch_rows(records, tail=args.tail or 0)
    if rows:
        title = "per-epoch telemetry"
        if args.tail:
            title += f" (last {len(rows)} of {overview['epochs_logged']} epochs)"
        print(format_table(EPOCH_COLUMNS, rows, title=title))
    phases = phase_totals(records)
    if phases:
        total = sum(phases.values()) or 1.0
        print(
            format_table(
                ("phase", "seconds", "% of hot loop"),
                [
                    (name, round(seconds, 4), round(100 * seconds / total, 1))
                    for name, seconds in sorted(
                        phases.items(), key=lambda kv: -kv[1]
                    )
                ],
                title="per-phase seconds (summed over epochs)",
            )
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from repro.obs.runlog import RunLogError
    from repro.obs.trace import (
        category_summary,
        chrome_trace,
        overlap_report,
        read_trace,
    )

    try:
        records = read_trace(args.trace_file)
    except OSError as exc:
        print(f"error: cannot read trace: {exc}", file=sys.stderr)
        return 2
    except RunLogError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not records:
        print(f"error: {args.trace_file} holds no spans", file=sys.stderr)
        return 2

    if args.trace_command == "export":
        exported = chrome_trace(records)
        out = Path(args.chrome)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(_json.dumps(exported), encoding="utf-8")
        print(
            f"chrome trace written to {out} "
            f"({len(exported['traceEvents'])} events); open in Perfetto or "
            "chrome://tracing"
        )
        return 0

    total = sum(float(r["dur"]) for r in records)
    print(
        format_table(
            ("category", "spans", "seconds", "self seconds", "% self"),
            [
                (
                    row["category"],
                    row["spans"],
                    round(row["seconds"], 4),
                    round(row["self_seconds"], 4),
                    round(100.0 * row["self_seconds"] / total, 1) if total else 0.0,
                )
                for row in category_summary(records)
            ],
            title=f"span summary ({args.trace_file}, {len(records)} spans)",
        )
    )
    overlap = overlap_report(records)
    if overlap is not None:
        print(
            format_table(
                ("field", "value"),
                [
                    ("worker refresh seconds", round(overlap["worker_seconds"], 4)),
                    ("gradient+optimizer seconds", round(overlap["step_seconds"], 4)),
                    ("hidden behind step (s)", round(overlap["hidden_seconds"], 4)),
                    ("hidden behind step (%)", round(overlap["hidden_pct"], 1)),
                ],
                title="refresh/step overlap",
            )
        )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import LintConfig, format_findings, lint_paths, list_rules

    if args.list_rules:
        print(list_rules())
        return 0
    try:
        config = LintConfig.from_selectors(
            select=args.select,
            ignore=args.ignore,
            output_format=args.output_format,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        result = lint_paths(args.paths, config)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_findings(result, args.output_format))
    return 0 if result.clean else 1


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "datasets":
        return _cmd_datasets(args)
    if args.command == "train":
        return _cmd_train(args)
    if args.command == "evaluate":
        return _cmd_evaluate(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "experiments":
        print(describe_experiments())
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
