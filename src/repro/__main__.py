"""``python -m repro`` — dispatch to the CLI."""

import sys

from repro.cli import main

if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like grep does.
        sys.stderr.close()
        raise SystemExit(141)
