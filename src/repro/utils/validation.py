"""Argument-validation helpers.

Raising early with a precise message beats failing deep inside a vectorised
numpy expression, so public entry points validate their inputs with these.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["check_positive", "check_probability", "check_shape", "require"]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def check_positive(name: str, value: float | int, *, strict: bool = True) -> None:
    """Validate that a scalar is positive (or non-negative if not strict)."""
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")


def check_probability(name: str, value: float) -> None:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


def check_shape(name: str, array: np.ndarray, shape: Sequence[int | None]) -> None:
    """Validate an array's shape; ``None`` entries act as wildcards."""
    actual = np.shape(array)
    if len(actual) != len(shape):
        raise ValueError(
            f"{name} must have {len(shape)} dimensions (shape {tuple(shape)}), "
            f"got shape {actual}"
        )
    for axis, (want, got) in enumerate(zip(shape, actual)):
        if want is not None and want != got:
            raise ValueError(
                f"{name} has wrong size on axis {axis}: expected {want}, got {got} "
                f"(full shape {actual})"
            )
