"""Shared utilities: RNG handling, timing, validation and lightweight logging.

These helpers are intentionally tiny and dependency-free.  Every stochastic
component in the library accepts a :class:`numpy.random.Generator` and routes
it through :func:`repro.utils.rng.ensure_rng`, which is what makes whole
experiments reproducible from a single integer seed.
"""

from repro.utils.logging import get_logger
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timer import Timer
from repro.utils.validation import (
    check_positive,
    check_probability,
    check_shape,
    require,
)

__all__ = [
    "Timer",
    "check_positive",
    "check_probability",
    "check_shape",
    "ensure_rng",
    "get_logger",
    "require",
    "spawn_rngs",
]
