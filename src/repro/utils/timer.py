"""Wall-clock timing helpers used by the benchmark harness and trainer."""

from __future__ import annotations

import time

__all__ = ["Timer"]


class Timer:
    """A resumable wall-clock stopwatch.

    Two properties make this safe for *sampling-based* readers — code
    that reads a shared stopwatch mid-run (the trainer's run-log
    exporter, the obs phase spans):

    * :attr:`elapsed` always includes the in-flight interval while the
      stopwatch is running, so a mid-run read is never stale;
    * reading never perturbs the accumulated state — ``stop()`` later
      returns exactly what it would have without the read.

    :attr:`intervals` counts completed start/stop cycles, which turns any
    span timer into a (total seconds, calls) pair — mean seconds per
    timed region for free.

    Example
    -------
    >>> timer = Timer()
    >>> with timer:
    ...     pass  # timed region
    >>> timer.elapsed >= 0.0
    True
    >>> timer.intervals
    1
    """

    def __init__(self) -> None:
        self._elapsed = 0.0
        self._started_at: float | None = None
        #: Completed start/stop cycles since construction or reset().
        self.intervals = 0

    def start(self) -> "Timer":
        """Start (or resume) the stopwatch."""
        if self._started_at is not None:
            raise RuntimeError("Timer is already running")
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the stopwatch and return the total elapsed seconds."""
        if self._started_at is None:
            raise RuntimeError("Timer is not running")
        self._elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        self.intervals += 1
        return self._elapsed

    def reset(self) -> None:
        """Zero the accumulated time and interval count; ends up stopped."""
        self._elapsed = 0.0
        self._started_at = None
        self.intervals = 0

    @property
    def running(self) -> bool:
        """Whether the stopwatch is currently running."""
        return self._started_at is not None

    @property
    def elapsed(self) -> float:
        """Total elapsed seconds, including the current run if active."""
        if self._started_at is None:
            return self._elapsed
        return self._elapsed + (time.perf_counter() - self._started_at)

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return f"Timer({self.elapsed:.6f}s, {state})"
