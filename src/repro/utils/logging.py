"""Library logging configuration.

The library never configures the root logger; it only creates namespaced
children under ``repro`` so that applications stay in control of handlers.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger"]

_ROOT_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    ``get_logger()`` returns the package root logger; ``get_logger("train")``
    returns ``repro.train``.  A :class:`logging.NullHandler` is attached to
    the package root so importing the library never emits spurious
    "no handler" warnings.
    """
    root = logging.getLogger(_ROOT_NAME)
    if not any(isinstance(h, logging.NullHandler) for h in root.handlers):
        root.addHandler(logging.NullHandler())
    if name is None:
        return root
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")
