"""Random-number-generator plumbing.

All stochastic code in the library takes an optional ``rng`` argument and
normalises it with :func:`ensure_rng`.  This gives three properties:

* a single integer seed reproduces an entire experiment;
* independent components can be handed independent streams via
  :func:`spawn_rngs`, so adding a new consumer does not perturb others;
* tests can inject a fixed generator to make assertions deterministic.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn_rngs"]


def ensure_rng(rng: np.random.Generator | int | None = None) -> np.random.Generator:
    """Normalise ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` (fresh entropy), an integer seed, or an existing generator
        (returned unchanged).

    Returns
    -------
    numpy.random.Generator
    """
    if rng is None:
        # None is the documented "fresh OS entropy" request; every
        # reproducible path passes a seed instead.
        return np.random.default_rng()  # repro-lint: ignore[RPL002] -- explicit None = entropy
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(
        f"rng must be None, an int seed, or a numpy Generator; got {type(rng)!r}"
    )


def spawn_rngs(rng: np.random.Generator | int | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent generators from ``rng``.

    Uses the SeedSequence spawning protocol, so the children are independent
    of each other and of the parent's future output.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
