"""From-scratch sparse optimisers (the paper trains with Adam, §IV-B2).

All optimisers consume :class:`~repro.models.params.GradientBag` instances,
updating only the parameter rows a mini-batch touched.  Adam keeps per-row
step counters so its bias correction matches dense Adam exactly when every
row is touched every step ("lazy Adam").
"""

from repro.optim.adagrad import AdaGrad
from repro.optim.adam import Adam
from repro.optim.base import Optimizer
from repro.optim.sgd import SGD

__all__ = ["AdaGrad", "Adam", "Optimizer", "SGD", "make_optimizer"]

_REGISTRY = {"sgd": SGD, "adagrad": AdaGrad, "adam": Adam}


def make_optimizer(name: str, learning_rate: float, **kwargs: object) -> Optimizer:
    """Instantiate an optimiser by name ('sgd', 'adagrad' or 'adam')."""
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown optimizer {name!r}; options: {sorted(_REGISTRY)}")
    return _REGISTRY[key](learning_rate, **kwargs)
