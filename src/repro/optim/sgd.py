"""Plain stochastic gradient descent."""

from __future__ import annotations

import numpy as np

from repro.optim.base import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    """``param[rows] -= lr * grad`` — stateless, the reference optimiser."""

    def _update_rows(
        self, name: str, param: np.ndarray, rows: np.ndarray, grads: np.ndarray
    ) -> None:
        param[rows] -= self.learning_rate * grads
