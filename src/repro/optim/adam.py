"""Adam (Kingma & Ba 2014) with sparse ("lazy") row updates.

The paper trains every model with Adam at its default betas (§IV-B2).
Embedding batches touch only a few rows, so moments are updated lazily:
each row keeps its own step counter for bias correction.  When every row is
touched on every step this reduces exactly to dense Adam; rows that sleep
simply keep stale moments, which is the standard sparse-Adam behaviour of
the frameworks the paper used.
"""

from __future__ import annotations

import numpy as np

from repro.optim.base import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    """Adaptive moment estimation over touched rows."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0:
            raise ValueError(f"beta1 must be in [0, 1), got {beta1}")
        if not 0.0 <= beta2 < 1.0:
            raise ValueError(f"beta2 must be in [0, 1), got {beta2}")
        if eps <= 0:
            raise ValueError(f"eps must be > 0, got {eps}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._counts: dict[str, np.ndarray] = {}

    def _update_rows(
        self, name: str, param: np.ndarray, rows: np.ndarray, grads: np.ndarray
    ) -> None:
        if name not in self._m:
            self._m[name] = np.zeros_like(param, dtype=np.float64)
            self._v[name] = np.zeros_like(param, dtype=np.float64)
            self._counts[name] = np.zeros(param.shape[0], dtype=np.int64)
        m, v, counts = self._m[name], self._v[name], self._counts[name]

        counts[rows] += 1
        t = counts[rows].astype(np.float64)
        m[rows] = self.beta1 * m[rows] + (1.0 - self.beta1) * grads
        v[rows] = self.beta2 * v[rows] + (1.0 - self.beta2) * grads**2
        # Per-row bias correction; reshape so it broadcasts over matrix rows.
        corr_shape = (len(rows),) + (1,) * (param.ndim - 1)
        m_hat = m[rows] / (1.0 - self.beta1**t).reshape(corr_shape)
        v_hat = v[rows] / (1.0 - self.beta2**t).reshape(corr_shape)
        param[rows] -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)

    def reset(self) -> None:
        super().reset()
        self._m.clear()
        self._v.clear()
        self._counts.clear()
