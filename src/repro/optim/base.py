"""Optimiser interface.

An optimiser mutates a ``dict[str, np.ndarray]`` of parameters in place,
given the sparse row gradients of one mini-batch.  Per-parameter state
(moments, accumulators) is created lazily the first time a parameter name
is seen, so optimisers work with any model without registration.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

import numpy as np

from repro.models.params import GradientBag

__all__ = ["DirtyMark", "Optimizer"]

#: Callback reporting the rows a step mutated: ``mark(name, unique_rows)``.
#: The dirty-row parameter sync (:mod:`repro.parallel.dirty`) hangs off
#: this hook — the optimiser is the one place that already holds each
#: parameter's touched rows compacted, so reporting them costs nothing.
DirtyMark = Callable[[str, np.ndarray], None]


class Optimizer(ABC):
    """Base class for sparse row-wise optimisers (gradient *descent*)."""

    def __init__(self, learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be > 0, got {learning_rate}")
        self.learning_rate = float(learning_rate)
        self.steps = 0

    def step(
        self,
        params: dict[str, np.ndarray],
        gradients: GradientBag,
        dirty_mark: DirtyMark | None = None,
    ) -> None:
        """Apply one descent step for every row recorded in ``gradients``.

        ``dirty_mark`` (optional) is called as ``dirty_mark(name, rows)``
        with each parameter's unique updated rows — the hook the trainer
        uses to feed the dirty-row parameter sync without re-compacting
        the gradient bag.
        """
        self.steps += 1
        for name, rows, grads in gradients.compacted():
            if name not in params:
                raise KeyError(f"gradient for unknown parameter {name!r}")
            self._update_rows(name, params[name], rows, grads)
            if dirty_mark is not None:
                dirty_mark(name, rows)

    @abstractmethod
    def _update_rows(
        self, name: str, param: np.ndarray, rows: np.ndarray, grads: np.ndarray
    ) -> None:
        """Update ``param[rows]`` in place given their summed gradients."""

    def reset(self) -> None:
        """Drop all accumulated state (used when restarting training)."""
        self.steps = 0

    def __repr__(self) -> str:
        return f"{type(self).__name__}(lr={self.learning_rate})"
