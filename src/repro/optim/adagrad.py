"""AdaGrad (Duchi et al. 2011) with sparse row accumulators."""

from __future__ import annotations

import numpy as np

from repro.optim.base import Optimizer

__all__ = ["AdaGrad"]


class AdaGrad(Optimizer):
    """Per-coordinate learning rates from accumulated squared gradients."""

    def __init__(self, learning_rate: float, eps: float = 1e-10) -> None:
        super().__init__(learning_rate)
        if eps <= 0:
            raise ValueError(f"eps must be > 0, got {eps}")
        self.eps = float(eps)
        self._accumulators: dict[str, np.ndarray] = {}

    def _update_rows(
        self, name: str, param: np.ndarray, rows: np.ndarray, grads: np.ndarray
    ) -> None:
        if name not in self._accumulators:
            self._accumulators[name] = np.zeros_like(param, dtype=np.float64)
        acc = self._accumulators[name]
        acc[rows] += grads**2
        param[rows] -= self.learning_rate * grads / (np.sqrt(acc[rows]) + self.eps)

    def reset(self) -> None:
        super().reset()
        self._accumulators.clear()
