"""repro — a full reproduction of *NSCaching: Simple and Efficient Negative
Sampling for Knowledge Graph Embedding* (Zhang et al., ICDE 2019).

The package is organised around the paper's stack (see DESIGN.md):

* :mod:`repro.data` — KG datasets: containers, IO, relation statistics,
  and synthetic benchmark analogues of WN18 / WN18RR / FB15K / FB15K237;
* :mod:`repro.models` — nine scoring functions with hand-derived analytic
  gradients (TransE/H/D/R, DistMult, ComplEx, RESCAL, HolE, SimplE);
* :mod:`repro.optim` — sparse SGD / AdaGrad / Adam;
* :mod:`repro.sampling` — negative-sampling baselines (uniform, Bernoulli,
  KBGAN, IGAN, self-adversarial);
* :mod:`repro.core` — **the contribution**: NSCaching's head/tail caches,
  sampling and update strategies, instrumentation, hashed-cache extension;
* :mod:`repro.parallel` — scaling: the cache row-space sharded into a
  shared-memory ``sharded-array`` backend and epoch refreshes run on a
  multiprocess :class:`~repro.parallel.pool.RefreshPool`;
* :mod:`repro.train` — the mini-batch trainer, callbacks, pretraining and
  grid search;
* :mod:`repro.eval` — filtered link prediction (full and sampled
  protocols), triplet classification and negative-score CCDF analysis;
* :mod:`repro.bench` — the experiment registry and reporting harness that
  regenerates every table and figure;
* :mod:`repro.obs` — observability: a near-zero-overhead metrics registry
  (counters/gauges/histograms, Prometheus + JSON exposition) and the
  JSONL run log behind ``--metrics-out`` / ``repro metrics``;
* :mod:`repro.serve` — online serving: embedding snapshots, a batched
  filtered top-k engine with an LRU query cache, and a JSON HTTP API
  (``/predict``, ``/healthz``, ``/stats``, ``/metrics``) behind
  ``repro serve``.

Quickstart::

    from repro import (NSCachingSampler, TrainConfig, Trainer, TransE,
                       evaluate, wn18rr_like)

    dataset = wn18rr_like(seed=0, scale=0.5)
    model = TransE(dataset.n_entities, dataset.n_relations, dim=32, rng=0)
    sampler = NSCachingSampler(cache_size=50, candidate_size=50)
    Trainer(model, dataset, sampler, TrainConfig(epochs=40)).run()
    print(evaluate(model, dataset, "test"))
"""

from repro.core import (
    ArrayNegativeCache,
    BucketedArrayCache,
    CacheStore,
    HashedNegativeCache,
    NegativeCache,
    NSCachingSampler,
    SampleStrategy,
    UpdateStrategy,
)
from repro.data import (
    BucketIndex,
    KeyIndex,
    KGDataset,
    TripleKeyIndex,
    SyntheticKGConfig,
    Vocabulary,
    fb13_like,
    fb15k237_like,
    fb15k_like,
    generate_kg,
    load_benchmark,
    wn18_like,
    wn18rr_like,
)
from repro.eval import (
    evaluate,
    link_prediction,
    per_category_link_prediction,
    sampled_link_prediction,
    triplet_classification,
)
from repro.models import (
    ComplEx,
    DistMult,
    HolE,
    KGEModel,
    RESCAL,
    RotatE,
    SimplE,
    TransD,
    TransE,
    TransH,
    TransR,
    make_model,
)
from repro.models.persistence import (
    export_snapshot,
    load_model,
    load_snapshot,
    save_model,
)
from repro.obs import MetricsRegistry, RunLogWriter, read_run_log
from repro.parallel import RefreshPool, ShardPlan, ShardedCacheStore
from repro.sampling import (
    BernoulliSampler,
    IGANSampler,
    KBGANSampler,
    NegativeSampler,
    SelfAdversarialSampler,
    UniformSampler,
    make_sampler,
)
from repro.serve import (
    EmbeddingSnapshot,
    PredictionEngine,
    QueryCache,
    TopKScorer,
)
from repro.train import TrainConfig, Trainer, pretrain, warm_start

__version__ = "1.0.0"

__all__ = [
    "ArrayNegativeCache",
    "BernoulliSampler",
    "BucketIndex",
    "BucketedArrayCache",
    "CacheStore",
    "ComplEx",
    "DistMult",
    "EmbeddingSnapshot",
    "HashedNegativeCache",
    "HolE",
    "IGANSampler",
    "KBGANSampler",
    "KGDataset",
    "KGEModel",
    "KeyIndex",
    "MetricsRegistry",
    "NSCachingSampler",
    "NegativeCache",
    "NegativeSampler",
    "PredictionEngine",
    "QueryCache",
    "RESCAL",
    "RefreshPool",
    "RotatE",
    "RunLogWriter",
    "SampleStrategy",
    "ShardPlan",
    "ShardedCacheStore",
    "SelfAdversarialSampler",
    "SimplE",
    "SyntheticKGConfig",
    "TopKScorer",
    "TrainConfig",
    "Trainer",
    "TransD",
    "TransE",
    "TransH",
    "TransR",
    "TripleKeyIndex",
    "UniformSampler",
    "UpdateStrategy",
    "Vocabulary",
    "evaluate",
    "export_snapshot",
    "fb13_like",
    "fb15k237_like",
    "fb15k_like",
    "generate_kg",
    "link_prediction",
    "load_model",
    "load_benchmark",
    "load_snapshot",
    "make_model",
    "make_sampler",
    "per_category_link_prediction",
    "pretrain",
    "read_run_log",
    "sampled_link_prediction",
    "save_model",
    "triplet_classification",
    "warm_start",
    "wn18_like",
    "wn18rr_like",
]
