"""IGAN (Wang et al. 2018) — full-softmax GAN negative sampling baseline.

IGAN's generator models ``p(e | (h, r, t))`` over the *whole* entity set
(paper §II-B2), which is what gives it the ``O(|E| d)`` per-triple cost in
Table I.  The original code was never released, so this is a faithful
re-implementation of the description:

* generator = a separate TransE; its softmax over all entities is the
  corruption distribution;
* trained with REINFORCE, reward = discriminator score of the sample.

The exact REINFORCE gradient of ``log p(chosen)`` contains the full-
vocabulary expectation ``sum_e p_e * grad score(e)``.  Materialising that
is O(B * |E| * d) memory, so it is estimated with ``expectation_samples``
draws from ``p`` (standard sampled-softmax REINFORCE; unbiased in
expectation).  Scoring — the dominant Table I cost — is still done over the
full entity set.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import KGDataset
from repro.data.triples import HEAD, REL, TAIL
from repro.models.base import KGEModel
from repro.models.transe import TransE
from repro.optim.adam import Adam
from repro.sampling.base import NegativeSampler

__all__ = ["IGANSampler"]


class IGANSampler(NegativeSampler):
    """GAN negative sampler with a full-entity-set generator distribution."""

    name = "IGAN"

    def __init__(
        self,
        *,
        generator_dim: int | None = None,
        generator_lr: float = 0.001,
        baseline_momentum: float = 0.9,
        expectation_samples: int = 16,
        temperature: float = 1.0,
        bernoulli: bool = True,
    ) -> None:
        super().__init__(bernoulli=bernoulli)
        if expectation_samples <= 0:
            raise ValueError(
                f"expectation_samples must be > 0, got {expectation_samples}"
            )
        self.generator_dim = generator_dim
        self.generator_lr = float(generator_lr)
        self.baseline_momentum = float(baseline_momentum)
        self.expectation_samples = int(expectation_samples)
        self.temperature = float(temperature)
        self.generator: KGEModel | None = None
        self._gen_optimizer: Adam | None = None
        self._baseline = 0.0
        self._baseline_initialised = False
        self._last: dict[str, np.ndarray] | None = None

    def bind(
        self,
        model: KGEModel,
        dataset: KGDataset,
        rng: np.random.Generator | int | None = None,
    ) -> "IGANSampler":
        super().bind(model, dataset, rng)
        dim = int(self.generator_dim or model.dim)
        self.generator = TransE(
            dataset.n_entities,
            dataset.n_relations,
            dim,
            rng=self.rng.integers(2**31 - 1),
        )
        self._gen_optimizer = Adam(self.generator_lr)
        self._baseline = 0.0
        self._baseline_initialised = False
        return self

    # -- sampling ---------------------------------------------------------------
    def sample(self, batch: np.ndarray, rows: object = None) -> np.ndarray:
        self._require_bound()
        assert self.generator is not None
        batch = np.asarray(batch, dtype=np.int64)
        b = len(batch)
        head_mask = self.choose_head_corruption(batch[:, REL])

        scores = np.empty((b, self.dataset.n_entities), dtype=np.float64)
        if head_mask.any():
            sel = np.flatnonzero(head_mask)
            scores[sel] = self.generator.score_all_heads(
                batch[sel, REL], batch[sel, TAIL]
            )
        if (~head_mask).any():
            sel = np.flatnonzero(~head_mask)
            scores[sel] = self.generator.score_all_tails(
                batch[sel, HEAD], batch[sel, REL]
            )
        scores /= self.temperature
        shifted = scores - scores.max(axis=1, keepdims=True)
        probs = np.exp(shifted)
        probs /= probs.sum(axis=1, keepdims=True)

        cdf = np.cumsum(probs, axis=1)
        u = self.rng.random((b, 1))
        chosen = np.minimum((u > cdf).sum(axis=1), self.dataset.n_entities - 1)
        chosen = chosen.astype(np.int64)

        # Draws for the expectation term of the REINFORCE gradient.
        u_exp = self.rng.random((b, self.expectation_samples))
        expectation = np.empty((b, self.expectation_samples), dtype=np.int64)
        for j in range(self.expectation_samples):
            expectation[:, j] = np.minimum(
                (u_exp[:, j : j + 1] > cdf).sum(axis=1), self.dataset.n_entities - 1
            )

        negatives = batch.copy()
        negatives[head_mask, HEAD] = chosen[head_mask]
        negatives[~head_mask, TAIL] = chosen[~head_mask]
        self._last = {
            "batch": batch,
            "head_mask": head_mask,
            "chosen": chosen,
            "expectation": expectation,
        }
        return negatives

    # -- generator REINFORCE step -------------------------------------------------
    def update(
        self, batch: np.ndarray, negatives: np.ndarray, rows: object = None
    ) -> None:
        if self._last is None:
            return
        assert self.generator is not None and self._gen_optimizer is not None
        ctx = self._last
        self._last = None
        b = len(ctx["batch"])
        m = self.expectation_samples

        rewards = self.model.score_triples(negatives)
        if not self._baseline_initialised:
            self._baseline = float(np.mean(rewards))
            self._baseline_initialised = True
        advantage = rewards - self._baseline
        self._baseline = (
            self.baseline_momentum * self._baseline
            + (1.0 - self.baseline_momentum) * float(np.mean(rewards))
        )

        # grad log p(chosen) ~= grad f(chosen) - mean_m grad f(e_m), e_m ~ p.
        # Build one flat triple list: chosen (coef adv) + M samples (coef -adv/M).
        entities = np.concatenate(
            [ctx["chosen"][:, None], ctx["expectation"]], axis=1
        )  # [B, 1+M]
        coeffs = np.concatenate(
            [
                advantage[:, None],
                -np.repeat(advantage[:, None] / m, m, axis=1),
            ],
            axis=1,
        )
        upstream = -(coeffs / self.temperature)  # optimiser descends

        n = 1 + m
        heads = np.repeat(ctx["batch"][:, HEAD], n).reshape(b, n)
        tails = np.repeat(ctx["batch"][:, TAIL], n).reshape(b, n)
        head_mask = ctx["head_mask"]
        heads[head_mask] = entities[head_mask]
        tails[~head_mask] = entities[~head_mask]
        rels = np.repeat(ctx["batch"][:, REL], n)

        bag = self.generator.grad(heads.ravel(), rels, tails.ravel(), upstream.ravel())
        self._gen_optimizer.step(self.generator.params, bag)
        self.generator.normalize(bag.touched_rows("entity"))
