"""The negative-sampler interface (Algorithm 1, step 5).

A sampler is *bound* to a model and dataset by the trainer, then asked for
one negative triple per positive in every mini-batch.  After the batch's
scores are available the trainer calls :meth:`NegativeSampler.update`, which
is where stateful samplers (NSCaching's cache refresh, KBGAN/IGAN generator
training) do their work.

All samplers share the Bernoulli head-vs-tail coin of Wang et al. (2014):
the corrupted side is chosen per relation with probability
``tph / (tph + hpt)`` (paper §IV-B1 applies this to KBGAN and NSCaching as
well as the Bernoulli baseline).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.data.dataset import KGDataset
from repro.data.relations import bernoulli_head_probabilities
from repro.data.triples import HEAD, REL, TAIL
from repro.models.base import KGEModel
from repro.utils.rng import ensure_rng

__all__ = ["NegativeSampler"]


class NegativeSampler(ABC):
    """Base class for negative sampling strategies."""

    #: Human-readable name used in reports.
    name: str = "base"

    def __init__(self, *, bernoulli: bool = True) -> None:
        self.bernoulli = bool(bernoulli)
        self.model: KGEModel | None = None
        self.dataset: KGDataset | None = None
        self.rng: np.random.Generator = ensure_rng(None)
        self._head_prob: np.ndarray | None = None
        self.epoch = 0

    # -- lifecycle ------------------------------------------------------------
    def bind(
        self,
        model: KGEModel,
        dataset: KGDataset,
        rng: np.random.Generator | int | None = None,
    ) -> "NegativeSampler":
        """Attach the sampler to a model and dataset; returns self.

        Subclasses extend this to build their own state (caches, generator
        models) and must call ``super().bind(...)`` first.
        """
        self.model = model
        self.dataset = dataset
        self.rng = ensure_rng(rng)
        if self.bernoulli:
            self._head_prob = bernoulli_head_probabilities(
                dataset.train, dataset.n_relations
            )
        else:
            self._head_prob = np.full(dataset.n_relations, 0.5)
        return self

    def _require_bound(self) -> None:
        if self.model is None or self.dataset is None:
            raise RuntimeError(
                f"{type(self).__name__} must be bound to a model and dataset "
                "before sampling (call .bind(model, dataset, rng))"
            )

    # -- head-vs-tail coin -----------------------------------------------------
    def choose_head_corruption(self, relations: np.ndarray) -> np.ndarray:
        """Boolean mask: True where the *head* should be corrupted."""
        assert self._head_prob is not None
        probs = self._head_prob[np.asarray(relations, dtype=np.int64)]
        return self.rng.random(len(probs)) < probs

    # -- main API ---------------------------------------------------------------
    @abstractmethod
    def sample(self, batch: np.ndarray, rows: object = None) -> np.ndarray:
        """Return one negative triple per positive; shape ``[B, 3]``.

        ``rows`` carries optional precomputed per-triple cache-row indices
        (see :meth:`repro.core.nscaching.NSCachingSampler.precompute_rows`);
        stateless samplers ignore it.
        """

    def update(
        self, batch: np.ndarray, negatives: np.ndarray, rows: object = None
    ) -> None:
        """Post-sampling hook (cache refresh / generator training).

        Called by the trainer once per batch, after :meth:`sample` but
        before the embedding update, mirroring Algorithm 2 (step 8 precedes
        step 9).  Default: no-op.  ``rows`` is as in :meth:`sample`.
        """

    def on_epoch_start(self, epoch: int) -> None:
        """Epoch notification (lazy cache updates key off this)."""
        self.epoch = int(epoch)

    # -- shared corruption helper -----------------------------------------------
    def _corrupt_with(self, batch: np.ndarray, replacements: np.ndarray) -> np.ndarray:
        """Replace head or tail of each row with ``replacements`` per the coin."""
        batch = np.asarray(batch, dtype=np.int64)
        negatives = batch.copy()
        head_mask = self.choose_head_corruption(batch[:, REL])
        negatives[head_mask, HEAD] = replacements[head_mask]
        negatives[~head_mask, TAIL] = replacements[~head_mask]
        return negatives

    def __repr__(self) -> str:
        return f"{type(self).__name__}(bernoulli={self.bernoulli})"
