"""Bernoulli negative sampling (Wang et al. 2014) — the paper's baseline.

Identical to uniform sampling except the corrupted side is chosen with the
per-relation probability ``tph / (tph + hpt)``, which reduces false
negatives on 1-N / N-1 / N-N relations.  The paper uses it as the "random
sampling" reference scheme everywhere (§IV-B1), including as the pretrain
regime for KBGAN and NSCaching.
"""

from __future__ import annotations

import numpy as np

from repro.sampling.base import NegativeSampler

__all__ = ["BernoulliSampler"]


class BernoulliSampler(NegativeSampler):
    """Uniform replacements with the relation-aware head/tail coin."""

    name = "Bernoulli"

    def __init__(self) -> None:
        super().__init__(bernoulli=True)

    def sample(self, batch: np.ndarray, rows: object = None) -> np.ndarray:
        self._require_bound()
        batch = np.asarray(batch, dtype=np.int64)
        replacements = self.rng.integers(
            0, self.dataset.n_entities, size=len(batch), dtype=np.int64
        )
        return self._corrupt_with(batch, replacements)
