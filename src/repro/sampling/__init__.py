"""Negative sampling strategies.

Baselines (fixed distributions): :class:`UniformSampler`,
:class:`BernoulliSampler`.  Dynamic-distribution competitors:
:class:`KBGANSampler` and :class:`IGANSampler` (GAN + REINFORCE) and
:class:`SelfAdversarialSampler` (score-weighted, extension).  The paper's
method lives in :mod:`repro.core` and is re-exported here lazily (to avoid
a circular import) so all samplers share one registry.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sampling.base import NegativeSampler
from repro.sampling.bernoulli import BernoulliSampler
from repro.sampling.igan import IGANSampler
from repro.sampling.kbgan import KBGANSampler
from repro.sampling.self_adversarial import SelfAdversarialSampler
from repro.sampling.uniform import UniformSampler

if TYPE_CHECKING:  # pragma: no cover - typing aid only
    from repro.core.nscaching import NSCachingSampler

__all__ = [
    "BernoulliSampler",
    "IGANSampler",
    "KBGANSampler",
    "NSCachingSampler",
    "NegativeSampler",
    "SAMPLER_NAMES",
    "SelfAdversarialSampler",
    "UniformSampler",
    "make_sampler",
]

#: All available sampler names.
SAMPLER_NAMES: tuple[str, ...] = (
    "Uniform",
    "Bernoulli",
    "KBGAN",
    "IGAN",
    "NSCaching",
    "SelfAdv",
)


def __getattr__(name: str) -> object:
    # NSCachingSampler lives in repro.core, which itself imports
    # repro.sampling.base; resolving it lazily breaks the import cycle.
    if name == "NSCachingSampler":
        from repro.core.nscaching import NSCachingSampler

        return NSCachingSampler
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def make_sampler(name: str, **kwargs: object) -> NegativeSampler:
    """Instantiate a sampler by registry name (case-insensitive)."""
    if name.lower() == "nscaching":
        from repro.core.nscaching import NSCachingSampler

        return NSCachingSampler(**kwargs)
    registry: dict[str, type[NegativeSampler]] = {
        "uniform": UniformSampler,
        "bernoulli": BernoulliSampler,
        "kbgan": KBGANSampler,
        "igan": IGANSampler,
        "selfadv": SelfAdversarialSampler,
    }
    key = name.lower()
    if key not in registry:
        raise KeyError(f"unknown sampler {name!r}; options: {SAMPLER_NAMES}")
    return registry[key](**kwargs)
