"""Uniform negative sampling (Bordes et al. 2013) — the original baseline.

Replaces the head or tail with an entity drawn uniformly from E.  Fixed
distribution, so it suffers the vanishing-gradient problem the paper
documents (§I, Figure 1): as training proceeds nearly every uniform
negative scores below the margin and contributes zero gradient.
"""

from __future__ import annotations

import numpy as np

from repro.sampling.base import NegativeSampler

__all__ = ["UniformSampler"]


class UniformSampler(NegativeSampler):
    """Corrupt with uniformly random entities; 50/50 head-vs-tail coin."""

    name = "Uniform"

    def __init__(self) -> None:
        super().__init__(bernoulli=False)

    def sample(self, batch: np.ndarray, rows: object = None) -> np.ndarray:
        self._require_bound()
        batch = np.asarray(batch, dtype=np.int64)
        replacements = self.rng.integers(
            0, self.dataset.n_entities, size=len(batch), dtype=np.int64
        )
        return self._corrupt_with(batch, replacements)
