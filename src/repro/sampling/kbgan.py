"""KBGAN (Cai & Wang 2018) — GAN-based negative sampling baseline.

The generator is a separate embedding model (the paper uses TransE, §IV-B1).
For each positive, ``candidate_size`` entities are drawn uniformly to form
the set ``Neg``; the generator softmaxes its scores over ``Neg`` and samples
one — that entity corrupts the triple.  The discriminator (the target KG
embedding model) trains on the chosen negative as usual, while the generator
is trained by REINFORCE: the reward is the discriminator's score of the
chosen negative (a high-scoring negative confused the discriminator), with
a moving-average baseline for variance reduction.

This reproduces the properties the paper attributes to KBGAN: extra
generator parameters (Table I), REINFORCE's high-variance gradients, and
the resulting sensitivity to pretraining (§IV-B3/B4).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import KGDataset
from repro.data.triples import HEAD, REL, TAIL
from repro.models.base import KGEModel
from repro.models.transe import TransE
from repro.optim.adam import Adam
from repro.sampling.base import NegativeSampler

__all__ = ["KBGANSampler"]


def _softmax(scores: np.ndarray) -> np.ndarray:
    """Row-wise softmax with max-shift stabilisation."""
    shifted = scores - scores.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class KBGANSampler(NegativeSampler):
    """GAN negative sampler over a uniformly drawn candidate set."""

    name = "KBGAN"

    def __init__(
        self,
        *,
        candidate_size: int = 50,
        generator_dim: int | None = None,
        generator_lr: float = 0.001,
        baseline_momentum: float = 0.9,
        bernoulli: bool = True,
    ) -> None:
        super().__init__(bernoulli=bernoulli)
        if candidate_size <= 0:
            raise ValueError(f"candidate_size must be > 0, got {candidate_size}")
        self.candidate_size = int(candidate_size)
        self.generator_dim = generator_dim
        self.generator_lr = float(generator_lr)
        self.baseline_momentum = float(baseline_momentum)
        self.generator: KGEModel | None = None
        self._gen_optimizer: Adam | None = None
        self._baseline = 0.0
        self._baseline_initialised = False
        # Per-batch context saved between sample() and update().
        self._last: dict[str, np.ndarray] | None = None
        # Warm-start request recorded before bind() (pretrain protocol).
        self._pending_warm_start: KGEModel | None = None

    # -- lifecycle ------------------------------------------------------------
    def bind(
        self,
        model: KGEModel,
        dataset: KGDataset,
        rng: np.random.Generator | int | None = None,
    ) -> "KBGANSampler":
        super().bind(model, dataset, rng)
        dim = int(self.generator_dim or model.dim)
        self.generator = TransE(
            dataset.n_entities,
            dataset.n_relations,
            dim,
            rng=self.rng.integers(2**31 - 1),
        )
        self._gen_optimizer = Adam(self.generator_lr)
        self._baseline = 0.0
        self._baseline_initialised = False
        if self._pending_warm_start is not None:
            self._copy_tables(self._pending_warm_start)
        return self

    def warm_start_generator(self, pretrained: KGEModel) -> None:
        """Copy a pretrained model's tables into the generator (paper §IV-B1).

        May be called before :meth:`bind`, in which case the copy is applied
        when the generator is created (the trainer re-binds samplers).
        """
        if self.generator is None:
            self._pending_warm_start = pretrained
            return
        self._pending_warm_start = pretrained
        self._copy_tables(pretrained)

    def _copy_tables(self, pretrained: KGEModel) -> None:
        assert self.generator is not None
        for name in ("entity", "relation"):
            if (
                name in pretrained.params
                and pretrained.params[name].shape == self.generator.params[name].shape
            ):
                self.generator.params[name][...] = pretrained.params[name]

    # -- sampling ---------------------------------------------------------------
    def sample(self, batch: np.ndarray, rows: object = None) -> np.ndarray:
        self._require_bound()
        assert self.generator is not None
        batch = np.asarray(batch, dtype=np.int64)
        b = len(batch)
        candidates = self.rng.integers(
            0, self.dataset.n_entities, size=(b, self.candidate_size), dtype=np.int64
        )
        head_mask = self.choose_head_corruption(batch[:, REL])

        scores = np.empty((b, self.candidate_size), dtype=np.float64)
        if head_mask.any():
            sel = np.flatnonzero(head_mask)
            scores[sel] = self.generator.score_heads(
                candidates[sel], batch[sel, REL], batch[sel, TAIL]
            )
        if (~head_mask).any():
            sel = np.flatnonzero(~head_mask)
            scores[sel] = self.generator.score_tails(
                batch[sel, HEAD], batch[sel, REL], candidates[sel]
            )
        probs = _softmax(scores)
        # Vectorised categorical sampling via inverse CDF.
        cdf = np.cumsum(probs, axis=1)
        u = self.rng.random((b, 1))
        chosen = np.minimum(
            (u > cdf).sum(axis=1), self.candidate_size - 1
        ).astype(np.int64)

        negatives = batch.copy()
        picked = candidates[np.arange(b), chosen]
        negatives[head_mask, HEAD] = picked[head_mask]
        negatives[~head_mask, TAIL] = picked[~head_mask]
        self._last = {
            "batch": batch,
            "candidates": candidates,
            "probs": probs,
            "chosen": chosen,
            "head_mask": head_mask,
        }
        return negatives

    # -- generator REINFORCE step -------------------------------------------------
    def update(
        self, batch: np.ndarray, negatives: np.ndarray, rows: object = None
    ) -> None:
        if self._last is None:
            return
        assert self.generator is not None and self._gen_optimizer is not None
        ctx = self._last
        self._last = None
        b, n = ctx["candidates"].shape

        rewards = self.model.score_triples(negatives)  # discriminator's view
        if not self._baseline_initialised:
            self._baseline = float(np.mean(rewards))
            self._baseline_initialised = True
        advantage = rewards - self._baseline
        self._baseline = (
            self.baseline_momentum * self._baseline
            + (1.0 - self.baseline_momentum) * float(np.mean(rewards))
        )

        # d log p(chosen) / d score_j = 1[j == chosen] - p_j; REINFORCE ascends
        # advantage * log p, and the optimiser descends, hence the minus sign.
        coeff = -ctx["probs"].copy()
        coeff[np.arange(b), ctx["chosen"]] += 1.0
        upstream = -(advantage[:, None] * coeff)  # [B, N]

        heads = np.repeat(ctx["batch"][:, HEAD], n).reshape(b, n)
        tails = np.repeat(ctx["batch"][:, TAIL], n).reshape(b, n)
        head_mask = ctx["head_mask"]
        heads[head_mask] = ctx["candidates"][head_mask]
        tails[~head_mask] = ctx["candidates"][~head_mask]
        rels = np.repeat(ctx["batch"][:, REL], n)

        bag = self.generator.grad(
            heads.ravel(), rels, tails.ravel(), upstream.ravel()
        )
        self._gen_optimizer.step(self.generator.params, bag)
        self.generator.normalize(bag.touched_rows("entity"))
