"""Self-adversarial negative sampling (Sun et al. 2019) — extension.

A later, GAN-free competitor to NSCaching: draw ``candidate_size`` uniform
candidates and sample one with probability ``softmax(alpha * f_D)`` using
the *discriminator's own* scores (no generator, no REINFORCE).  Included as
an extension benchmark because it occupies the same design point the paper
argues for — hard negatives without adversarial training — but without a
cache, so every batch pays the scoring cost on fresh candidates.
"""

from __future__ import annotations

import numpy as np

from repro.data.triples import HEAD, REL, TAIL
from repro.sampling.base import NegativeSampler

__all__ = ["SelfAdversarialSampler"]


class SelfAdversarialSampler(NegativeSampler):
    """Score-weighted sampling from fresh uniform candidates."""

    name = "SelfAdv"

    def __init__(
        self,
        *,
        candidate_size: int = 50,
        alpha: float = 1.0,
        bernoulli: bool = True,
    ) -> None:
        super().__init__(bernoulli=bernoulli)
        if candidate_size <= 0:
            raise ValueError(f"candidate_size must be > 0, got {candidate_size}")
        if alpha <= 0:
            raise ValueError(f"alpha (temperature) must be > 0, got {alpha}")
        self.candidate_size = int(candidate_size)
        self.alpha = float(alpha)

    def sample(self, batch: np.ndarray, rows: object = None) -> np.ndarray:
        self._require_bound()
        batch = np.asarray(batch, dtype=np.int64)
        b = len(batch)
        candidates = self.rng.integers(
            0, self.dataset.n_entities, size=(b, self.candidate_size), dtype=np.int64
        )
        head_mask = self.choose_head_corruption(batch[:, REL])

        scores = np.empty((b, self.candidate_size), dtype=np.float64)
        if head_mask.any():
            rows = np.flatnonzero(head_mask)
            scores[rows] = self.model.score_heads(
                candidates[rows], batch[rows, REL], batch[rows, TAIL]
            )
        if (~head_mask).any():
            rows = np.flatnonzero(~head_mask)
            scores[rows] = self.model.score_tails(
                batch[rows, HEAD], batch[rows, REL], candidates[rows]
            )

        logits = self.alpha * scores
        logits -= logits.max(axis=1, keepdims=True)
        probs = np.exp(logits)
        probs /= probs.sum(axis=1, keepdims=True)
        cdf = np.cumsum(probs, axis=1)
        u = self.rng.random((b, 1))
        chosen = np.minimum((u > cdf).sum(axis=1), self.candidate_size - 1)
        picked = candidates[np.arange(b), chosen.astype(np.int64)]

        negatives = batch.copy()
        negatives[head_mask, HEAD] = picked[head_mask]
        negatives[~head_mask, TAIL] = picked[~head_mask]
        return negatives
