"""One-call evaluation bundle used by callbacks, examples and benchmarks.

The filtered-candidate mask builders historically lived here; they are now
in :mod:`repro.eval.filters` (shared with the serving layer) and re-exported
for compatibility.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import KGDataset
from repro.eval.filters import head_filter_masks, tail_filter_masks
from repro.eval.ranking import link_prediction
from repro.eval.sampled import sampled_link_prediction
from repro.models.base import KGEModel
from repro.obs.registry import MetricsRegistry

__all__ = ["evaluate", "head_filter_masks", "tail_filter_masks"]

#: Valid ``mode`` arguments to :func:`evaluate`.
EVAL_MODES = ("full", "sampled")


def evaluate(
    model: KGEModel,
    dataset: KGDataset,
    split: str = "test",
    *,
    mode: str = "full",
    filtered: bool = True,
    hits_at: tuple[int, ...] = (1, 3, 10),
    batch_size: int = 128,
    num_negatives: int | None = None,
    seed: int | np.random.Generator | None = 0,
    metrics: MetricsRegistry | None = None,
) -> dict[str, float]:
    """Filtered link-prediction metrics as a flat dict.

    Returns keys ``mrr``, ``mr`` and ``hits@k`` for each requested ``k`` —
    the Table IV columns.

    Parameters
    ----------
    mode:
        ``"full"`` ranks every query against all entities (the exact
        protocol); ``"sampled"`` ranks against ``num_negatives`` filtered
        random negatives plus the true entity — O(K) per query, the only
        practical option on million-entity graphs.
    num_negatives:
        Required (and only valid) with ``mode="sampled"``.
    seed:
        Negative-draw seed for the sampled mode; ignored by the full mode.
    metrics:
        Optional registry receiving the eval phase counters
        (``eval_queries_total`` etc., labelled by protocol).
    """
    if mode not in EVAL_MODES:
        raise ValueError(f"mode must be one of {EVAL_MODES}, got {mode!r}")
    if mode == "sampled":
        if num_negatives is None:
            raise ValueError("mode='sampled' requires num_negatives")
        result = sampled_link_prediction(
            model,
            dataset,
            split,
            num_negatives=num_negatives,
            filtered=filtered,
            seed=seed,
            batch_size=batch_size,
            hits_at=hits_at,
            metrics=metrics,
        )
    else:
        if num_negatives is not None:
            raise ValueError(
                "num_negatives is only valid with mode='sampled' "
                f"(got mode={mode!r})"
            )
        result = link_prediction(
            model,
            dataset,
            split,
            filtered=filtered,
            batch_size=batch_size,
            hits_at=hits_at,
            metrics=metrics,
        )
    return dict(result.metrics)
