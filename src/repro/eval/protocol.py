"""One-call evaluation bundle used by callbacks, examples and benchmarks.

The filtered-candidate mask builders historically lived here; they are now
in :mod:`repro.eval.filters` (shared with the serving layer) and re-exported
for compatibility.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import KGDataset
from repro.eval.filters import head_filter_masks, tail_filter_masks
from repro.eval.ranking import link_prediction
from repro.models.base import KGEModel

__all__ = ["evaluate", "head_filter_masks", "tail_filter_masks"]


def evaluate(
    model: KGEModel,
    dataset: KGDataset,
    split: str = "test",
    *,
    filtered: bool = True,
    hits_at: tuple[int, ...] = (1, 3, 10),
    batch_size: int = 128,
) -> dict[str, float]:
    """Filtered link-prediction metrics as a flat dict.

    Returns keys ``mrr``, ``mr`` and ``hits@k`` for each requested ``k`` —
    the Table IV columns.
    """
    result = link_prediction(
        model,
        dataset,
        split,
        filtered=filtered,
        batch_size=batch_size,
        hits_at=hits_at,
    )
    return dict(result.metrics)
