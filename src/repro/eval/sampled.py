"""Sampled link prediction for graphs where full ranking is intractable.

The full protocol (:mod:`repro.eval.ranking`) ranks every test triple
against all ``E`` entities — ``O(E)`` scoring work per query, which makes
``repro evaluate`` and any validate-while-training loop unusable on
million-entity graphs.  This module implements the sampled protocol in the
style of pykeen's ``restricted_evaluator``: each query is ranked against
``K`` *filtered* random negatives plus the true entity, so the per-query
cost drops from ``O(E)`` to ``O(K)``.

Everything is vectorised across the batch — there are no per-row Python
loops over candidates:

* the per-query filter sets come from :mod:`repro.eval.filters` (the same
  single-source-of-truth masks the full evaluator and the serving layer
  use);
* known-true answers are excluded with one batched ``searchsorted``
  against the sorted filter arrays: each row's draw is taken uniformly
  over its *allowed* pool ``[0, E - |filter|)`` and shifted past the
  filtered entities via the classic gap transform (the x-th allowed
  entity is ``x`` plus the number of filtered entities ``<=`` the
  result), with every row's query folded into one globally sorted code
  array so the whole batch resolves in a single ``searchsorted`` call;
* the true entity is re-admitted as candidate column 0 and the whole
  ``[B, K + 1]`` block is scored through the fused
  :meth:`~repro.models.base.KGEModel.score_candidates` kernels;
* ranks use the same average-tie policy as
  :func:`~repro.eval.ranking.rank_scores` and come back as a
  :class:`~repro.eval.ranking.RankingResult`, so every downstream
  consumer (metrics dicts, ``EvalCallback`` series, run-log records)
  works unchanged.

Negatives are drawn *without replacement*; rows whose allowed pool holds
at most ``K`` entities enumerate the entire pool instead, so with
``K >= E - 1`` the sampled protocol reproduces full filtered ranking
bit-identically.  Results are deterministic for a fixed
``(seed, num_negatives, batch_size)``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.data.dataset import KGDataset
from repro.data.triples import HEAD, REL, TAIL
from repro.eval.filters import head_filter_masks, tail_filter_masks
from repro.eval.ranking import RankingResult, rank_scores, record_eval_counters
from repro.models.base import KGEModel
from repro.obs.registry import MetricsRegistry
from repro.utils.rng import ensure_rng

__all__ = ["sample_filtered_candidates", "sampled_link_prediction"]

#: Duplicate-redraw rounds before leftover collision slots are masked out.
#: Redraws only happen on rows with pool > K, where expected collisions
#: shrink geometrically per round; 16 rounds is far past convergence.
_MAX_REDRAWS = 16


def _gap_codes(
    masks: list[np.ndarray], n_entities: int
) -> tuple[np.ndarray, np.ndarray]:
    """Fold per-row sorted filter arrays into one sorted gap-code array.

    Row ``i``'s ``j``-th filtered entity ``f`` becomes the code
    ``i * E + (f - j)``.  Within a row ``f - j`` is non-decreasing (the
    filter arrays are strictly increasing), and rows occupy disjoint
    increasing bands, so the concatenation is globally sorted — one
    ``searchsorted`` answers every row's gap query at once.

    Returns ``(codes, offsets)`` with ``offsets[i]`` the start of row
    ``i``'s segment (``offsets`` has ``B + 1`` entries).
    """
    b = len(masks)
    lengths = np.fromiter((len(m) for m in masks), dtype=np.int64, count=b)
    offsets = np.zeros(b + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    total = int(offsets[-1])
    if total == 0:
        return np.empty(0, dtype=np.int64), offsets
    flat = np.concatenate(masks).astype(np.int64, copy=False)
    rows = np.repeat(np.arange(b, dtype=np.int64), lengths)
    intra = np.arange(total, dtype=np.int64) - offsets[rows]
    return rows * n_entities + (flat - intra), offsets


def _map_pool_ranks(
    x: np.ndarray,
    rows: np.ndarray,
    gap_codes: np.ndarray,
    offsets: np.ndarray,
    n_entities: int,
) -> np.ndarray:
    """The ``x[i]``-th allowed entity of row ``rows[i]``, batched.

    ``allowed = x + #{filtered entities <= allowed}`` — the shift is one
    vectorised membership query against the per-row sorted filter arrays,
    resolved through the global gap-code array.
    """
    shift = (
        np.searchsorted(gap_codes, rows * n_entities + x, side="right")
        - offsets[rows]
    )
    return x + shift


def _sample_pool_ranks(
    pools: np.ndarray, k: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Draw ``k`` distinct values in ``[0, pools[i])`` per row.

    Every row must satisfy ``pools[i] > k``.  Draws start with
    replacement; duplicate slots are redrawn in vectorised rounds until
    none remain.  Any slot still colliding after :data:`_MAX_REDRAWS`
    rounds (never observed — kept as a termination guarantee) is reported
    ``False`` in the returned keep-mask instead of looping forever.
    """
    x = rng.integers(0, pools[:, None], size=(len(pools), k), dtype=np.int64)
    keep = np.ones_like(x, dtype=bool)
    for round_no in range(_MAX_REDRAWS + 1):
        order = np.argsort(x, axis=1, kind="stable")
        xs = np.take_along_axis(x, order, axis=1)
        dup_sorted = np.zeros_like(keep)
        dup_sorted[:, 1:] = xs[:, 1:] == xs[:, :-1]
        if not dup_sorted.any():
            break
        dup = np.zeros_like(dup_sorted)
        np.put_along_axis(dup, order, dup_sorted, axis=1)
        if round_no == _MAX_REDRAWS:
            keep &= ~dup
            break
        highs = np.broadcast_to(pools[:, None], x.shape)[dup]
        x[dup] = rng.integers(0, highs, dtype=np.int64)
    return x, keep


def sample_filtered_candidates(
    masks: list[np.ndarray],
    true_entities: np.ndarray,
    n_entities: int,
    num_negatives: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Filtered candidate blocks for a batch of queries.

    Parameters
    ----------
    masks:
        Per-row sorted arrays of entities to exclude (the filter sets
        from :mod:`repro.eval.filters`); each row's mask must contain its
        true entity — true by construction for known triples.
    true_entities:
        ``[B]`` true answers, re-admitted as candidate column 0.
    num_negatives:
        Negatives ``K`` per query, drawn uniformly *without replacement*
        from the row's allowed pool.  Rows whose pool holds at most ``K``
        entities enumerate the whole pool (the exactness path).

    Returns
    -------
    ``(candidates, valid)``: an ``int64 [B, K + 1]`` id block (column 0
    the true entity) and a boolean mask of real slots — enumeration rows
    with pools smaller than ``K`` leave trailing slots invalid (filled
    with entity 0 so the block still scores in one call; mask their
    scores before ranking).
    """
    b = len(masks)
    k = int(num_negatives)
    true_entities = np.asarray(true_entities, dtype=np.int64)
    candidates = np.zeros((b, k + 1), dtype=np.int64)
    candidates[:, 0] = true_entities
    valid = np.zeros((b, k + 1), dtype=bool)
    valid[:, 0] = True
    if b == 0:
        return candidates, valid

    gap_codes, offsets = _gap_codes(masks, n_entities)
    pools = n_entities - np.diff(offsets)

    enum_rows = np.flatnonzero(pools <= k)
    if len(enum_rows):
        counts = pools[enum_rows]
        total = int(counts.sum())
        if total:
            rows = np.repeat(enum_rows, counts)
            starts = np.zeros(len(counts), dtype=np.int64)
            np.cumsum(counts[:-1], out=starts[1:])
            slots = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
            mapped = _map_pool_ranks(slots, rows, gap_codes, offsets, n_entities)
            candidates[rows, 1 + slots] = mapped
            valid[rows, 1 + slots] = True

    samp_rows = np.flatnonzero(pools > k)
    if len(samp_rows):
        x, keep = _sample_pool_ranks(pools[samp_rows], k, rng)
        rows = np.repeat(samp_rows, k)
        mapped = _map_pool_ranks(x.ravel(), rows, gap_codes, offsets, n_entities)
        candidates[samp_rows, 1:] = mapped.reshape(len(samp_rows), k)
        valid[samp_rows, 1:] = keep
    return candidates, valid


def _side_ranks(
    model: KGEModel,
    masks: list[np.ndarray],
    anchors: np.ndarray,
    r: np.ndarray,
    true_entities: np.ndarray,
    mode: str,
    num_negatives: int,
    n_entities: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Average-tie ranks of one query side's sampled candidate blocks."""
    candidates, valid = sample_filtered_candidates(
        masks, true_entities, n_entities, num_negatives, rng
    )
    scores = model.score_candidates(anchors, r, candidates, mode=mode)
    scores[~valid] = -np.inf
    return rank_scores(scores, np.zeros(len(scores), dtype=np.int64), None)


def sampled_link_prediction(
    model: KGEModel,
    dataset: KGDataset,
    split: str = "test",
    *,
    num_negatives: int = 50,
    filtered: bool = True,
    seed: int | np.random.Generator | None = 0,
    batch_size: int = 128,
    hits_at: tuple[int, ...] = (1, 3, 10),
    metrics: MetricsRegistry | None = None,
) -> RankingResult:
    """Sampled link prediction over both head and tail queries.

    Each query is ranked against ``num_negatives`` filtered random
    negatives plus the true entity (``O(K)`` per query instead of the
    full protocol's ``O(E)``).  With ``num_negatives >= E - 1`` this
    reproduces :func:`~repro.eval.ranking.link_prediction` exactly; at
    smaller ``K`` the metrics are unbiased-pool estimates whose MRR and
    Hits@k read *higher* than full ranking (fewer competitors per query)
    but are comparable across runs evaluated with the same ``K`` and
    seed.

    Parameters
    ----------
    num_negatives:
        Negatives ``K`` per query (>= 1), drawn without replacement.
    filtered:
        Exclude every known-true answer (any split) from the negative
        pool, as in the filtered protocol; the raw setting excludes only
        the query's own true entity.
    seed:
        Seed or generator for the negative draws; a fixed seed makes the
        evaluation deterministic (for a fixed ``batch_size``).
    metrics:
        Optional registry; when given, the evaluator counts queries,
        scored candidates, batches and wall seconds under
        ``protocol="sampled"`` labels.
    """
    if num_negatives < 1:
        raise ValueError(f"num_negatives must be >= 1, got {num_negatives}")
    rng = ensure_rng(seed)
    triples = getattr(dataset, split)
    n_entities = dataset.n_entities
    started = time.perf_counter()
    all_ranks: list[np.ndarray] = []
    for start in range(0, len(triples), batch_size):
        batch = triples[start : start + batch_size]
        h, r, t = batch[:, HEAD], batch[:, REL], batch[:, TAIL]

        tail_masks = (
            tail_filter_masks(dataset, h, r)
            if filtered
            else list(t[:, None].astype(np.int64))
        )
        all_ranks.append(
            _side_ranks(
                model, tail_masks, h, r, t, "tail", num_negatives, n_entities, rng
            )
        )

        head_masks = (
            head_filter_masks(dataset, r, t)
            if filtered
            else list(h[:, None].astype(np.int64))
        )
        all_ranks.append(
            _side_ranks(
                model, head_masks, t, r, h, "head", num_negatives, n_entities, rng
            )
        )
    ranks = np.concatenate(all_ranks) if all_ranks else np.empty(0)
    if metrics is not None:
        record_eval_counters(
            metrics,
            protocol="sampled",
            queries=2 * len(triples),
            candidates=2 * len(triples) * (num_negatives + 1),
            batches=-(-len(triples) // batch_size) if len(triples) else 0,
            seconds=time.perf_counter() - started,
        )
    return RankingResult(ranks=ranks, hits_at=hits_at)
