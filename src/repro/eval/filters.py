"""Filtered-candidate mask construction (Bordes et al. 2013, §IV-A3).

Both the offline evaluator (:mod:`repro.eval.ranking`) and the online
serving layer (:mod:`repro.serve.topk`) must discount every *other* known
true answer when ranking candidates for a query ``(h, r, ?)`` or
``(?, r, t)``.  This module is the single source of truth for building
those per-query mask column lists from a dataset's filter indexes, so the
two paths cannot drift apart.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import KGDataset

__all__ = ["head_filter_masks", "tail_filter_masks"]

_EMPTY = np.empty(0, dtype=np.int64)


def tail_filter_masks(
    dataset: KGDataset, h: np.ndarray, r: np.ndarray
) -> list[np.ndarray]:
    """Per-query candidate columns to exclude for tail queries ``(h, r, ?)``.

    ``masks[i]`` lists every entity known (in any split) to be a true tail
    of ``(h[i], r[i])``.  Callers that rank a specific target entity must
    re-admit it themselves — :func:`repro.eval.ranking.rank_scores` never
    excludes the true column, and the serving layer's ``keep`` argument
    does the same.
    """
    # tolist() up front hands the loop native ints — cheaper than per-row
    # numpy-scalar conversion on the serving hot path.
    tails = dataset.tail_filter
    empty = _EMPTY
    return [
        tails.get(pair, empty)
        for pair in zip(np.asarray(h).ravel().tolist(), np.asarray(r).ravel().tolist())
    ]


def head_filter_masks(
    dataset: KGDataset, r: np.ndarray, t: np.ndarray
) -> list[np.ndarray]:
    """Per-query candidate columns to exclude for head queries ``(?, r, t)``."""
    heads = dataset.head_filter
    empty = _EMPTY
    return [
        heads.get(pair, empty)
        for pair in zip(np.asarray(r).ravel().tolist(), np.asarray(t).ravel().tolist())
    ]
