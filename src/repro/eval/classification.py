"""Triplet classification (paper §IV-B5, Table V).

Decide whether a triple is true by thresholding its score: predict positive
iff ``f(h, r, t) >= sigma_r``, where the relation-specific threshold
``sigma_r`` maximises accuracy on labelled validation triples.  Relations
unseen in the validation split fall back to a global threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import KGDataset
from repro.data.negatives import classification_split
from repro.data.triples import REL, as_triple_array
from repro.models.base import KGEModel
from repro.utils.rng import ensure_rng

__all__ = ["ClassificationResult", "fit_relation_thresholds", "triplet_classification"]


@dataclass
class ClassificationResult:
    """Accuracy of threshold-based triplet classification."""

    accuracy: float
    thresholds: dict[int, float]
    global_threshold: float
    n_test: int

    def __repr__(self) -> str:
        return (
            f"ClassificationResult(accuracy={self.accuracy:.4f}, "
            f"n_test={self.n_test}, relations={len(self.thresholds)})"
        )


def _best_threshold(scores: np.ndarray, labels: np.ndarray) -> float:
    """Threshold maximising accuracy of ``score >= threshold -> positive``.

    Scans the midpoints between consecutive sorted scores (plus sentinels),
    in O(n log n).
    """
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels)
    order = np.argsort(scores)
    sorted_scores = scores[order]
    sorted_labels = labels[order]
    n = len(scores)
    # For threshold below everything: all predicted positive.
    pos_total = int(np.sum(sorted_labels > 0))
    # After placing threshold just above sorted_scores[i], items 0..i are
    # predicted negative.  correct(i) = negatives among 0..i + positives after.
    neg_prefix = np.cumsum(sorted_labels < 0)
    pos_prefix = np.cumsum(sorted_labels > 0)
    correct_below = pos_total  # threshold = -inf
    best_correct = correct_below
    best_threshold = sorted_scores[0] - 1.0
    for i in range(n):
        correct = int(neg_prefix[i]) + (pos_total - int(pos_prefix[i]))
        if correct > best_correct:
            best_correct = correct
            upper = sorted_scores[i + 1] if i + 1 < n else sorted_scores[i] + 1.0
            best_threshold = 0.5 * (sorted_scores[i] + upper)
    return float(best_threshold)


def fit_relation_thresholds(
    scores: np.ndarray, labels: np.ndarray, relations: np.ndarray
) -> tuple[dict[int, float], float]:
    """Fit per-relation thresholds plus the global fallback."""
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels)
    relations = np.asarray(relations, dtype=np.int64)
    thresholds: dict[int, float] = {}
    for r in np.unique(relations):
        mask = relations == r
        thresholds[int(r)] = _best_threshold(scores[mask], labels[mask])
    global_threshold = _best_threshold(scores, labels)
    return thresholds, global_threshold


def triplet_classification(
    model: KGEModel,
    dataset: KGDataset,
    rng: np.random.Generator | int | None = None,
) -> ClassificationResult:
    """Run the full Table V protocol: fit on valid, score on test."""
    rng = ensure_rng(rng)
    valid_triples, valid_labels = classification_split(dataset, "valid", rng)
    test_triples, test_labels = classification_split(dataset, "test", rng)

    valid_scores = model.score_triples(valid_triples)
    thresholds, global_threshold = fit_relation_thresholds(
        valid_scores, valid_labels, as_triple_array(valid_triples)[:, REL]
    )

    test_scores = model.score_triples(test_triples)
    test_relations = as_triple_array(test_triples)[:, REL]
    cut = np.array(
        [thresholds.get(int(r), global_threshold) for r in test_relations]
    )
    predictions = np.where(test_scores >= cut, 1, -1)
    accuracy = float(np.mean(predictions == test_labels))
    return ClassificationResult(
        accuracy=accuracy,
        thresholds=thresholds,
        global_threshold=global_threshold,
        n_test=len(test_labels),
    )
