"""Link prediction: the paper's primary evaluation task (§IV-A2).

For every test triple ``(h, r, t)``, rank the true tail among all entities
scored as ``(h, r, ?)`` and the true head among all ``(?, r, t)``.  Metrics
(§IV-A3): mean reciprocal rank (MRR), mean rank (MR) and Hits@k.  In the
"filtered" setting every *other* known-true entity is removed from the
candidate list before ranking, so a model is not punished for ranking a
different correct answer above the queried one.

Ties are scored with the *average* rank (mean of optimistic and
pessimistic), which prevents constant-score models from appearing perfect.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import KGDataset
from repro.data.triples import HEAD, REL, TAIL
from repro.eval.filters import head_filter_masks, tail_filter_masks
from repro.models.base import KGEModel
from repro.obs.registry import MetricsRegistry

__all__ = [
    "RankingResult",
    "link_prediction",
    "rank_scores",
    "record_eval_counters",
]


@dataclass
class RankingResult:
    """Per-query ranks plus the aggregate metrics computed from them."""

    ranks: np.ndarray  # float ranks (average tie policy), head+tail queries
    hits_at: tuple[int, ...] = (1, 3, 10)
    metrics: dict[str, float] = field(init=False)

    def __post_init__(self) -> None:
        ranks = np.asarray(self.ranks, dtype=np.float64)
        if len(ranks) == 0:
            # NaN, not 0.0: an MR of 0.0 beats the theoretical optimum of
            # 1.0, so a minimize-style early stopper on an empty split
            # would lock onto the bogus value forever.  NaN compares
            # False against everything, which "no data" should.
            self.metrics = {"mrr": float("nan"), "mr": float("nan")}
            self.metrics.update({f"hits@{k}": float("nan") for k in self.hits_at})
            return
        self.metrics = {
            "mrr": float(np.mean(1.0 / ranks)),
            "mr": float(np.mean(ranks)),
        }
        for k in self.hits_at:
            self.metrics[f"hits@{k}"] = float(np.mean(ranks <= k))

    @property
    def mrr(self) -> float:
        """Mean reciprocal rank."""
        return self.metrics["mrr"]

    @property
    def mr(self) -> float:
        """Mean rank."""
        return self.metrics["mr"]

    def hits(self, k: int) -> float:
        """Hits@k (fraction of queries ranked in the top k)."""
        return self.metrics[f"hits@{k}"]

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v:.4f}" for k, v in self.metrics.items())
        return f"RankingResult({parts}, n={len(self.ranks)})"


def rank_scores(
    scores: np.ndarray, true_cols: np.ndarray, mask_cols: list[np.ndarray] | None
) -> np.ndarray:
    """Average-tie ranks of ``scores[i, true_cols[i]]`` within each row.

    ``mask_cols[i]`` lists candidate columns to exclude (the filtered
    setting); the true column is never excluded.
    """
    scores = np.asarray(scores, dtype=np.float64)
    b = len(scores)
    rows = np.arange(b)
    true_scores = scores[rows, true_cols].copy()
    if mask_cols is not None:
        scores = scores.copy()
        for i in range(b):
            cols = mask_cols[i]
            if len(cols):
                scores[i, cols] = -np.inf
        scores[rows, true_cols] = true_scores
    greater = np.sum(scores > true_scores[:, None], axis=1)
    ties = np.sum(scores == true_scores[:, None], axis=1) - 1  # exclude self
    return 1.0 + greater + 0.5 * ties


def record_eval_counters(
    metrics: MetricsRegistry,
    *,
    protocol: str,
    queries: int,
    candidates: int,
    batches: int,
    seconds: float,
) -> None:
    """Fold one evaluation pass into the shared eval phase counters.

    Both the full and sampled evaluators report here, so dashboards can
    compare the two protocols' query volume and cost under one metric
    family, split by the ``protocol`` label.
    """
    labels = {"protocol": protocol}
    metrics.counter(
        "eval_queries_total", "ranked link-prediction queries", labels=labels
    ).inc(queries)
    metrics.counter(
        "eval_candidates_scored_total",
        "candidate entities scored during evaluation",
        labels=labels,
    ).inc(candidates)
    metrics.counter(
        "eval_batches_total", "evaluation batches processed", labels=labels
    ).inc(batches)
    metrics.counter(
        "eval_seconds_total", "evaluation wall seconds", labels=labels
    ).inc(seconds)


def link_prediction(
    model: KGEModel,
    dataset: KGDataset,
    split: str = "test",
    *,
    filtered: bool = True,
    batch_size: int = 128,
    hits_at: tuple[int, ...] = (1, 3, 10),
    metrics: MetricsRegistry | None = None,
) -> RankingResult:
    """Evaluate link prediction over both head and tail queries.

    Parameters
    ----------
    split:
        ``"test"``, ``"valid"`` or ``"train"`` (the latter for diagnostics).
    filtered:
        Apply the filtered protocol (all corrupted triples existing in any
        split are removed, §IV-A3).
    metrics:
        Optional registry; when given, the evaluator counts queries,
        scored candidates, batches and wall seconds under
        ``protocol="full"`` labels.
    """
    triples = getattr(dataset, split)
    started = time.perf_counter()
    all_ranks: list[np.ndarray] = []
    for start in range(0, len(triples), batch_size):
        batch = triples[start : start + batch_size]
        h, r, t = batch[:, HEAD], batch[:, REL], batch[:, TAIL]

        tail_scores = model.score_all_tails(h, r)
        tail_mask = tail_filter_masks(dataset, h, r) if filtered else None
        all_ranks.append(rank_scores(tail_scores, t, tail_mask))

        head_scores = model.score_all_heads(r, t)
        head_mask = head_filter_masks(dataset, r, t) if filtered else None
        all_ranks.append(rank_scores(head_scores, h, head_mask))
    ranks = np.concatenate(all_ranks) if all_ranks else np.empty(0)
    if metrics is not None:
        record_eval_counters(
            metrics,
            protocol="full",
            queries=2 * len(triples),
            candidates=2 * len(triples) * dataset.n_entities,
            batches=-(-len(triples) // batch_size) if len(triples) else 0,
            seconds=time.perf_counter() - started,
        )
    return RankingResult(ranks=ranks, hits_at=hits_at)
