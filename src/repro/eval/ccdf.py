"""Negative-score distribution analysis (paper §III-A, Figure 1).

For a positive triple ``(h, r, t)``, define the distance of a tail
corruption as ``D(h, r, t') = f(h, r, t') - f(h, r, t)``.  A margin-loss
negative contributes gradient only while ``D >= -gamma`` (equivalently the
paper plots the CCDF of ``D`` and marks where the margin lies).  The paper's
key observation — the distribution is highly skewed, with only a few large-
score negatives, and it drifts left as training proceeds — is what
motivates the cache.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import KGDataset
from repro.models.base import KGEModel

__all__ = ["negative_distances", "ccdf", "skewness"]


def negative_distances(
    model: KGEModel,
    dataset: KGDataset,
    triple: np.ndarray,
    *,
    side: str = "tail",
    exclude_true: bool = True,
) -> np.ndarray:
    """``f(corrupted) - f(positive)`` for every corruption of one triple.

    Parameters
    ----------
    triple:
        A single ``(h, r, t)`` id triple.
    side:
        ``"tail"`` replaces ``t`` (as in Figure 1), ``"head"`` replaces ``h``.
    exclude_true:
        Drop corruptions that are known true triples (false negatives).
    """
    h, r, t = (int(x) for x in np.asarray(triple, dtype=np.int64).ravel()[:3])
    pos = model.score(np.array([h]), np.array([r]), np.array([t]))[0]
    if side == "tail":
        scores = model.score_all_tails(np.array([h]), np.array([r]))[0]
        own = t
        known = dataset.true_tails(h, r)
    elif side == "head":
        scores = model.score_all_heads(np.array([r]), np.array([t]))[0]
        own = h
        known = dataset.true_heads(r, t)
    else:
        raise ValueError(f"side must be 'head' or 'tail', got {side!r}")
    keep = np.ones(len(scores), dtype=bool)
    keep[own] = False
    if exclude_true:
        keep[known] = False
    return scores[keep] - pos


def ccdf(values: np.ndarray, xs: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Complementary CDF ``F(x) = P(V >= x)`` evaluated at ``xs``.

    When ``xs`` is omitted, a 100-point grid spanning the value range is
    used.  Returns ``(xs, probabilities)``.
    """
    values = np.sort(np.asarray(values, dtype=np.float64))
    if len(values) == 0:
        raise ValueError("ccdf of an empty sample is undefined")
    if xs is None:
        xs = np.linspace(values[0], values[-1], 100)
    xs = np.asarray(xs, dtype=np.float64)
    # P(V >= x) = 1 - (#values < x) / n
    counts = np.searchsorted(values, xs, side="left")
    return xs, 1.0 - counts / len(values)


def skewness(values: np.ndarray) -> float:
    """Sample skewness of the distance distribution (the §III-A claim)."""
    values = np.asarray(values, dtype=np.float64)
    if len(values) < 3:
        return 0.0
    centred = values - values.mean()
    m2 = np.mean(centred**2)
    m3 = np.mean(centred**3)
    if m2 <= 0:
        return 0.0
    return float(m3 / m2**1.5)
