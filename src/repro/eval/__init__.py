"""Evaluation protocols (paper §IV-A2/A3 and §IV-B5).

* :mod:`repro.eval.ranking` — filtered/raw link prediction: MRR, MR and
  Hits@k over both head and tail queries;
* :mod:`repro.eval.classification` — triplet classification with
  relation-specific thresholds tuned on the validation split (Table V);
* :mod:`repro.eval.ccdf` — score-distribution analysis of negative
  triples (Figure 1);
* :mod:`repro.eval.per_relation` — Hits@k split by relation mapping
  category and prediction side (the TransE/TransH breakdown);
* :mod:`repro.eval.filters` — filtered-candidate mask construction shared
  with the serving layer;
* :mod:`repro.eval.sampled` — sampled/restricted ranking against K
  filtered random negatives (million-entity graphs);
* :mod:`repro.eval.protocol` — the one-call bundle used by callbacks and
  benchmarks.
"""

from repro.eval.ccdf import ccdf, negative_distances
from repro.eval.classification import (
    ClassificationResult,
    fit_relation_thresholds,
    triplet_classification,
)
from repro.eval.filters import head_filter_masks, tail_filter_masks
from repro.eval.per_relation import CategoryBreakdown, per_category_link_prediction
from repro.eval.protocol import evaluate
from repro.eval.ranking import RankingResult, link_prediction
from repro.eval.sampled import sampled_link_prediction

__all__ = [
    "CategoryBreakdown",
    "ClassificationResult",
    "RankingResult",
    "ccdf",
    "evaluate",
    "fit_relation_thresholds",
    "head_filter_masks",
    "link_prediction",
    "tail_filter_masks",
    "negative_distances",
    "per_category_link_prediction",
    "sampled_link_prediction",
    "triplet_classification",
]
