"""Per-relation-category link prediction breakdown.

The TransE/TransH line of work (which the paper builds on) reports
Hits@10 split by relation mapping category (1-1, 1-N, N-1, N-N) and by
prediction side, because that is where Bernoulli sampling and the
head/tail cache design earn their keep: predicting the "one" side of a
1-N relation is much harder than the "many" side.  This module computes
that table for any model/dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import KGDataset
from repro.data.relations import RelationCategory, categorize_relations
from repro.data.triples import HEAD, REL, TAIL
from repro.eval.filters import head_filter_masks, tail_filter_masks
from repro.eval.ranking import rank_scores
from repro.models.base import KGEModel

__all__ = ["CategoryBreakdown", "per_category_link_prediction"]


@dataclass
class CategoryBreakdown:
    """Hits@k per (relation category, prediction side)."""

    k: int
    #: category value -> {"head": hits@k, "tail": hits@k}
    table: dict[str, dict[str, float]]
    #: category value -> number of test triples in the category
    counts: dict[str, int]

    def hits(self, category: RelationCategory | str, side: str) -> float:
        """Hits@k for one cell (NaN when the category has no test triples)."""
        key = category.value if isinstance(category, RelationCategory) else category
        return self.table.get(key, {}).get(side, float("nan"))

    def rows(self) -> list[tuple[str, int, float, float]]:
        """Report rows: (category, #test, head Hits@k, tail Hits@k)."""
        ordered = [c.value for c in RelationCategory]
        return [
            (
                key,
                self.counts.get(key, 0),
                self.table.get(key, {}).get("head", float("nan")),
                self.table.get(key, {}).get("tail", float("nan")),
            )
            for key in ordered
            if key in self.table
        ]


def per_category_link_prediction(
    model: KGEModel,
    dataset: KGDataset,
    split: str = "test",
    *,
    k: int = 10,
    filtered: bool = True,
    batch_size: int = 128,
) -> CategoryBreakdown:
    """Hits@k per relation category and prediction side.

    Categories are computed from the *training* split (as the baselines
    do), so the breakdown is available before any test triple is touched.
    """
    categories = categorize_relations(dataset.train, dataset.n_relations)
    triples = getattr(dataset, split)

    head_hits: dict[str, list[float]] = {}
    tail_hits: dict[str, list[float]] = {}
    counts: dict[str, int] = {}
    for start in range(0, len(triples), batch_size):
        batch = triples[start : start + batch_size]
        h, r, t = batch[:, HEAD], batch[:, REL], batch[:, TAIL]

        tail_scores = model.score_all_tails(h, r)
        tail_mask = tail_filter_masks(dataset, h, r) if filtered else None
        tail_ranks = rank_scores(tail_scores, t, tail_mask)

        head_scores = model.score_all_heads(r, t)
        head_mask = head_filter_masks(dataset, r, t) if filtered else None
        head_ranks = rank_scores(head_scores, h, head_mask)

        for i, rel in enumerate(r):
            key = categories[int(rel)].value
            counts[key] = counts.get(key, 0) + 1
            head_hits.setdefault(key, []).append(float(head_ranks[i] <= k))
            tail_hits.setdefault(key, []).append(float(tail_ranks[i] <= k))

    table = {
        key: {
            "head": float(np.mean(head_hits[key])),
            "tail": float(np.mean(tail_hits[key])),
        }
        for key in head_hits
    }
    return CategoryBreakdown(k=k, table=table, counts=counts)
