"""Knowledge-graph data substrate.

This package provides everything the paper gets from "download WN18/FB15K":

* :mod:`repro.data.triples` — typed containers for triple arrays and
  vocabularies;
* :mod:`repro.data.dataset` — :class:`KGDataset`, the train/valid/test
  bundle with filtered-ranking indexes;
* :mod:`repro.data.io` — TSV load/save in the standard ``h \\t r \\t t``
  benchmark format;
* :mod:`repro.data.keyindex` — dense integer indexes over the distinct
  cache keys of a training split (the substrate of the array cache);
* :mod:`repro.data.relations` — relation cardinality analysis and the
  Bernoulli corruption statistics of Wang et al. (2014);
* :mod:`repro.data.synthetic` — a latent-structure generator that plants a
  learnable ground truth (the offline stand-in for the public benchmarks);
* :mod:`repro.data.benchmarks` — named, seeded configurations mirroring
  WN18 / WN18RR / FB15K / FB15K237 at laptop scale;
* :mod:`repro.data.fb13` — a small interpretable typed KG (people,
  professions, nationalities) used for the cache-evolution study;
* :mod:`repro.data.negatives` — labelled negative triples for the triplet
  classification task and false-negative accounting.
"""

from repro.data.benchmarks import (
    BENCHMARKS,
    fb15k237_like,
    fb15k_like,
    load_benchmark,
    wn18_like,
    wn18rr_like,
)
from repro.data.dataset import KGDataset
from repro.data.fb13 import fb13_like
from repro.data.io import load_triples_tsv, save_triples_tsv
from repro.data.keyindex import (
    BucketIndex,
    KeyIndex,
    TripleKeyIndex,
    stable_key_hash,
)
from repro.data.negatives import (
    classification_split,
    corrupt_uniform,
    false_negative_rate,
)
from repro.data.relations import (
    RelationCategory,
    bernoulli_head_probabilities,
    categorize_relations,
    relation_cardinalities,
)
from repro.data.synthetic import SyntheticKGConfig, generate_kg
from repro.data.triples import Vocabulary, as_triple_array, triple_key_set

__all__ = [
    "BENCHMARKS",
    "BucketIndex",
    "KGDataset",
    "KeyIndex",
    "RelationCategory",
    "SyntheticKGConfig",
    "TripleKeyIndex",
    "Vocabulary",
    "as_triple_array",
    "bernoulli_head_probabilities",
    "categorize_relations",
    "classification_split",
    "corrupt_uniform",
    "false_negative_rate",
    "fb13_like",
    "fb15k237_like",
    "fb15k_like",
    "generate_kg",
    "load_benchmark",
    "load_triples_tsv",
    "relation_cardinalities",
    "save_triples_tsv",
    "stable_key_hash",
    "triple_key_set",
    "wn18_like",
    "wn18rr_like",
]
