"""Relation cardinality analysis and Bernoulli corruption statistics.

TransH (Wang et al. 2014) categorises each relation by its average number of
tails per head (``tph``) and heads per tail (``hpt``), and corrupts the head
with probability ``tph / (tph + hpt)``.  Corrupting the *many* side of a
one-to-many relation is much less likely to produce a false negative, which
is the entire point of Bernoulli sampling; NSCaching and KBGAN reuse the
same head-vs-tail coin (paper §IV-B1).
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.data.triples import HEAD, REL, TAIL, as_triple_array

__all__ = [
    "RelationCategory",
    "RelationStats",
    "bernoulli_head_probabilities",
    "categorize_relations",
    "relation_cardinalities",
]

#: Threshold separating "1" from "N" sides, following Wang et al. (2014).
CARDINALITY_THRESHOLD = 1.5


class RelationCategory(str, Enum):
    """The four mapping categories of a relation."""

    ONE_TO_ONE = "1-1"
    ONE_TO_MANY = "1-N"
    MANY_TO_ONE = "N-1"
    MANY_TO_MANY = "N-N"


class RelationStats:
    """Per-relation ``tph`` / ``hpt`` statistics over a triple array."""

    def __init__(self, triples: np.ndarray, n_relations: int) -> None:
        triples = as_triple_array(triples)
        self.n_relations = int(n_relations)
        self.tph = np.zeros(n_relations, dtype=np.float64)
        self.hpt = np.zeros(n_relations, dtype=np.float64)
        for r in range(n_relations):
            mask = triples[:, REL] == r
            if not mask.any():
                # Unobserved relation: neutral statistics.
                self.tph[r] = 1.0
                self.hpt[r] = 1.0
                continue
            heads = triples[mask, HEAD]
            tails = triples[mask, TAIL]
            n = int(mask.sum())
            self.tph[r] = n / len(np.unique(heads))
            self.hpt[r] = n / len(np.unique(tails))

    def head_replace_probability(self) -> np.ndarray:
        """Bernoulli probability of corrupting the *head*, per relation.

        ``p = tph / (tph + hpt)``: for a one-to-many relation (large tph)
        the head side is nearly unique, so replacing the head rarely creates
        a false negative.
        """
        return self.tph / (self.tph + self.hpt)

    def categories(
        self, threshold: float = CARDINALITY_THRESHOLD
    ) -> list[RelationCategory]:
        """Classify every relation into 1-1 / 1-N / N-1 / N-N."""
        result: list[RelationCategory] = []
        for r in range(self.n_relations):
            many_tails = self.tph[r] >= threshold
            many_heads = self.hpt[r] >= threshold
            if many_tails and many_heads:
                result.append(RelationCategory.MANY_TO_MANY)
            elif many_tails:
                result.append(RelationCategory.ONE_TO_MANY)
            elif many_heads:
                result.append(RelationCategory.MANY_TO_ONE)
            else:
                result.append(RelationCategory.ONE_TO_ONE)
        return result


def relation_cardinalities(
    triples: np.ndarray, n_relations: int
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(tph, hpt)`` arrays of shape ``[n_relations]``."""
    stats = RelationStats(triples, n_relations)
    return stats.tph, stats.hpt


def bernoulli_head_probabilities(triples: np.ndarray, n_relations: int) -> np.ndarray:
    """Per-relation probability of replacing the head under Bernoulli sampling."""
    return RelationStats(triples, n_relations).head_replace_probability()


def categorize_relations(
    triples: np.ndarray,
    n_relations: int,
    threshold: float = CARDINALITY_THRESHOLD,
) -> list[RelationCategory]:
    """Classify relations into the four TransH mapping categories."""
    return RelationStats(triples, n_relations).categories(threshold)
