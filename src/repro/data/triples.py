"""Triple arrays and vocabularies.

A triple store is just an ``int64`` array of shape ``[n, 3]`` whose columns
are ``(head, relation, tail)`` ids.  Keeping the representation this bare
lets every consumer (samplers, models, evaluators) stay fully vectorised.
:class:`Vocabulary` maps those ids back to human-readable labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "Vocabulary",
    "as_triple_array",
    "entity_degrees",
    "relation_counts",
    "triple_key_set",
    "unique_triples",
]

#: Column indices in a triple array.
HEAD, REL, TAIL = 0, 1, 2


@dataclass(frozen=True)
class Vocabulary:
    """Bidirectional label <-> id maps for entities and relations.

    Instances are immutable; build them once per dataset.  Ids are dense and
    start at zero, which is what the embedding tables index by.
    """

    entities: tuple[str, ...]
    relations: tuple[str, ...]
    _entity_ids: dict[str, int] = field(init=False, repr=False, compare=False)
    _relation_ids: dict[str, int] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        entity_ids = {label: i for i, label in enumerate(self.entities)}
        relation_ids = {label: i for i, label in enumerate(self.relations)}
        if len(entity_ids) != len(self.entities):
            raise ValueError("duplicate entity labels in vocabulary")
        if len(relation_ids) != len(self.relations):
            raise ValueError("duplicate relation labels in vocabulary")
        object.__setattr__(self, "_entity_ids", entity_ids)
        object.__setattr__(self, "_relation_ids", relation_ids)

    # -- sizes ------------------------------------------------------------
    @property
    def n_entities(self) -> int:
        """Number of distinct entities."""
        return len(self.entities)

    @property
    def n_relations(self) -> int:
        """Number of distinct relations."""
        return len(self.relations)

    # -- lookups ----------------------------------------------------------
    def entity_id(self, label: str) -> int:
        """Return the id of an entity label (KeyError if unknown)."""
        return self._entity_ids[label]

    def relation_id(self, label: str) -> int:
        """Return the id of a relation label (KeyError if unknown)."""
        return self._relation_ids[label]

    def entity_label(self, entity: int) -> str:
        """Return the label of an entity id."""
        return self.entities[entity]

    def relation_label(self, relation: int) -> str:
        """Return the label of a relation id."""
        return self.relations[relation]

    def encode(self, labelled: Iterable[tuple[str, str, str]]) -> np.ndarray:
        """Encode ``(h, r, t)`` label triples into an id array ``[n, 3]``."""
        rows = [
            (self._entity_ids[h], self._relation_ids[r], self._entity_ids[t])
            for h, r, t in labelled
        ]
        return as_triple_array(rows)

    def decode(self, triples: np.ndarray) -> list[tuple[str, str, str]]:
        """Decode an id array back into ``(h, r, t)`` label tuples."""
        triples = as_triple_array(triples)
        return [
            (self.entities[h], self.relations[r], self.entities[t])
            for h, r, t in triples
        ]

    @classmethod
    def from_triples(
        cls, labelled: Sequence[tuple[str, str, str]]
    ) -> "Vocabulary":
        """Build a vocabulary covering every label mentioned in ``labelled``.

        Labels are sorted so the id assignment is deterministic regardless of
        triple order.
        """
        entity_labels = sorted({h for h, _, _ in labelled} | {t for _, _, t in labelled})
        relation_labels = sorted({r for _, r, _ in labelled})
        return cls(tuple(entity_labels), tuple(relation_labels))

    @classmethod
    def anonymous(cls, n_entities: int, n_relations: int) -> "Vocabulary":
        """Build a vocabulary of synthetic labels ``e0..`` / ``r0..``."""
        width_e = len(str(max(n_entities - 1, 0)))
        width_r = len(str(max(n_relations - 1, 0)))
        return cls(
            tuple(f"e{i:0{width_e}d}" for i in range(n_entities)),
            tuple(f"r{i:0{width_r}d}" for i in range(n_relations)),
        )


def as_triple_array(triples: np.ndarray | Sequence[tuple[int, int, int]]) -> np.ndarray:
    """Coerce ``triples`` into a contiguous ``int64`` array of shape ``[n, 3]``.

    An empty input yields a ``[0, 3]`` array so downstream code never needs
    special cases.
    """
    array = np.asarray(triples, dtype=np.int64)
    if array.size == 0:
        return array.reshape(0, 3)
    if array.ndim == 1 and array.shape[0] == 3:
        array = array.reshape(1, 3)
    if array.ndim != 2 or array.shape[1] != 3:
        raise ValueError(f"triples must have shape [n, 3], got {array.shape}")
    return np.ascontiguousarray(array)


def unique_triples(triples: np.ndarray) -> np.ndarray:
    """Return ``triples`` with exact duplicates removed (order not preserved)."""
    return np.unique(as_triple_array(triples), axis=0)


def triple_key_set(triples: np.ndarray) -> set[tuple[int, int, int]]:
    """Return the set of ``(h, r, t)`` tuples for O(1) membership tests."""
    array = as_triple_array(triples)
    return set(map(tuple, array.tolist()))


def entity_degrees(triples: np.ndarray, n_entities: int) -> np.ndarray:
    """Total degree (as head plus as tail) of every entity, shape ``[n_entities]``."""
    array = as_triple_array(triples)
    degrees = np.bincount(array[:, HEAD], minlength=n_entities)
    degrees = degrees + np.bincount(array[:, TAIL], minlength=n_entities)
    return degrees.astype(np.int64)


def relation_counts(triples: np.ndarray, n_relations: int) -> np.ndarray:
    """Number of triples per relation, shape ``[n_relations]``."""
    array = as_triple_array(triples)
    return np.bincount(array[:, REL], minlength=n_relations).astype(np.int64)
