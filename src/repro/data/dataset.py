"""The train/valid/test dataset bundle used throughout the library.

:class:`KGDataset` owns the vocabulary, the three splits, and the *filter
indexes* needed by filtered link-prediction evaluation (Bordes et al. 2013):
for a query ``(h, r, ?)`` every known true tail across all splits must be
discounted when ranking.  Those indexes are built lazily and cached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.data.io import load_label_triples, save_label_triples
from repro.data.triples import (
    HEAD,
    REL,
    TAIL,
    Vocabulary,
    as_triple_array,
    entity_degrees,
    relation_counts,
    triple_key_set,
    unique_triples,
)
from repro.utils.rng import ensure_rng

__all__ = ["KGDataset"]


def _pair_index(
    triples: np.ndarray, key_cols: tuple[int, int], value_col: int
) -> dict[tuple[int, int], np.ndarray]:
    """Group ``value_col`` by the pair of ``key_cols``.

    Returns a dict mapping each observed key pair to a sorted, deduplicated
    ``int64`` array of values.  Built with one lexsort rather than a Python
    loop per row.
    """
    if len(triples) == 0:
        return {}
    keys = triples[:, list(key_cols)]
    values = triples[:, value_col]
    order = np.lexsort((values, keys[:, 1], keys[:, 0]))
    keys = keys[order]
    values = values[order]
    # boundaries where the (k0, k1) pair changes
    change = np.any(np.diff(keys, axis=0) != 0, axis=1)
    boundaries = np.concatenate(([0], np.flatnonzero(change) + 1, [len(keys)]))
    index: dict[tuple[int, int], np.ndarray] = {}
    for start, stop in zip(boundaries[:-1], boundaries[1:]):
        key = (int(keys[start, 0]), int(keys[start, 1]))
        index[key] = np.unique(values[start:stop])
    return index


@dataclass
class KGDataset:
    """A knowledge graph with train/valid/test splits.

    Parameters
    ----------
    name:
        Human-readable dataset name (used in reports).
    vocab:
        Entity/relation vocabulary; embedding tables are sized from it.
    train, valid, test:
        ``int64`` triple arrays of shape ``[n, 3]``.
    """

    name: str
    vocab: Vocabulary
    train: np.ndarray
    valid: np.ndarray
    test: np.ndarray
    _tail_filter: dict[tuple[int, int], np.ndarray] | None = field(
        default=None, repr=False, compare=False
    )
    _head_filter: dict[tuple[int, int], np.ndarray] | None = field(
        default=None, repr=False, compare=False
    )
    _all_keys: set[tuple[int, int, int]] | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.train = as_triple_array(self.train)
        self.valid = as_triple_array(self.valid)
        self.test = as_triple_array(self.test)
        for split_name, split in (
            ("train", self.train),
            ("valid", self.valid),
            ("test", self.test),
        ):
            if len(split) == 0:
                continue
            if split[:, [HEAD, TAIL]].max() >= self.vocab.n_entities:
                raise ValueError(f"{split_name} split references unknown entity ids")
            if split[:, REL].max() >= self.vocab.n_relations:
                raise ValueError(f"{split_name} split references unknown relation ids")
            if split.min() < 0:
                raise ValueError(f"{split_name} split contains negative ids")

    # -- sizes ------------------------------------------------------------
    @property
    def n_entities(self) -> int:
        """Number of entities |E|."""
        return self.vocab.n_entities

    @property
    def n_relations(self) -> int:
        """Number of relations |R|."""
        return self.vocab.n_relations

    @property
    def n_train(self) -> int:
        """Number of training triples."""
        return len(self.train)

    def all_triples(self) -> np.ndarray:
        """All triples across the three splits, shape ``[n, 3]``."""
        return np.concatenate([self.train, self.valid, self.test], axis=0)

    # -- membership and filters -------------------------------------------
    @property
    def known_triples(self) -> set[tuple[int, int, int]]:
        """Set of every (h, r, t) across all splits (the 'filtered' universe)."""
        if self._all_keys is None:
            self._all_keys = triple_key_set(self.all_triples())
        return self._all_keys

    def is_known(self, h: int, r: int, t: int) -> bool:
        """Whether ``(h, r, t)`` appears in any split."""
        return (int(h), int(r), int(t)) in self.known_triples

    @property
    def tail_filter(self) -> dict[tuple[int, int], np.ndarray]:
        """Map ``(h, r) -> sorted array of true tails`` across all splits."""
        if self._tail_filter is None:
            self._tail_filter = _pair_index(self.all_triples(), (HEAD, REL), TAIL)
        return self._tail_filter

    @property
    def head_filter(self) -> dict[tuple[int, int], np.ndarray]:
        """Map ``(r, t) -> sorted array of true heads`` across all splits."""
        if self._head_filter is None:
            self._head_filter = _pair_index(self.all_triples(), (REL, TAIL), HEAD)
        return self._head_filter

    def true_tails(self, h: int, r: int) -> np.ndarray:
        """All known tails for ``(h, r, ?)`` (empty array if none)."""
        return self.tail_filter.get((int(h), int(r)), np.empty(0, dtype=np.int64))

    def true_heads(self, r: int, t: int) -> np.ndarray:
        """All known heads for ``(?, r, t)`` (empty array if none)."""
        return self.head_filter.get((int(r), int(t)), np.empty(0, dtype=np.int64))

    # -- statistics ---------------------------------------------------------
    def degrees(self) -> np.ndarray:
        """Entity degrees over the training split."""
        return entity_degrees(self.train, self.n_entities)

    def relation_frequencies(self) -> np.ndarray:
        """Training triple count per relation."""
        return relation_counts(self.train, self.n_relations)

    def summary(self) -> dict[str, int]:
        """Table II-style statistics dict."""
        return {
            "entities": self.n_entities,
            "relations": self.n_relations,
            "train": len(self.train),
            "valid": len(self.valid),
            "test": len(self.test),
        }

    # -- construction -------------------------------------------------------
    @classmethod
    def from_triples(
        cls,
        name: str,
        triples: np.ndarray,
        vocab: Vocabulary,
        *,
        valid_fraction: float = 0.05,
        test_fraction: float = 0.05,
        rng: np.random.Generator | int | None = None,
    ) -> "KGDataset":
        """Split a deduplicated triple array into train/valid/test.

        The split is random but *coverage-preserving*: any triple whose head,
        tail or relation would otherwise vanish from the training split is
        pulled back into train, so every embedding row receives gradient
        signal.  This mirrors how the public benchmarks were constructed.
        """
        if valid_fraction < 0 or test_fraction < 0 or valid_fraction + test_fraction >= 1:
            raise ValueError(
                "valid_fraction and test_fraction must be non-negative and sum to < 1"
            )
        rng = ensure_rng(rng)
        triples = unique_triples(triples)
        n = len(triples)
        order = rng.permutation(n)
        n_valid = int(round(n * valid_fraction))
        n_test = int(round(n * test_fraction))
        held = order[: n_valid + n_test]
        train_idx = order[n_valid + n_test :]

        # Coverage fix-up: move held-out triples mentioning unseen ids to train.
        train = triples[train_idx]
        seen_entities = np.zeros(vocab.n_entities, dtype=bool)
        seen_relations = np.zeros(vocab.n_relations, dtype=bool)
        if len(train):
            seen_entities[train[:, HEAD]] = True
            seen_entities[train[:, TAIL]] = True
            seen_relations[train[:, REL]] = True

        keep_mask = np.ones(len(held), dtype=bool)
        pulled: list[np.ndarray] = []
        for i, idx in enumerate(held):
            h, r, t = triples[idx]
            if not (seen_entities[h] and seen_entities[t] and seen_relations[r]):
                keep_mask[i] = False
                pulled.append(triples[idx])
                seen_entities[h] = seen_entities[t] = True
                seen_relations[r] = True
        held = held[keep_mask]
        if pulled:
            train = np.concatenate([train, np.stack(pulled)], axis=0)

        n_valid = min(n_valid, len(held))
        valid = triples[held[:n_valid]]
        test = triples[held[n_valid:]]
        return cls(name=name, vocab=vocab, train=train, valid=valid, test=test)

    # -- persistence ----------------------------------------------------------
    def save(self, directory: str | Path) -> None:
        """Write ``train.txt`` / ``valid.txt`` / ``test.txt`` TSVs."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for split_name, split in (
            ("train", self.train),
            ("valid", self.valid),
            ("test", self.test),
        ):
            save_label_triples(directory / f"{split_name}.txt", self.vocab.decode(split))

    @classmethod
    def load(cls, name: str, directory: str | Path) -> "KGDataset":
        """Read a dataset previously written by :meth:`save`."""
        directory = Path(directory)
        splits = {
            split_name: load_label_triples(directory / f"{split_name}.txt")
            for split_name in ("train", "valid", "test")
        }
        labelled = [t for split in splits.values() for t in split]
        vocab = Vocabulary.from_triples(labelled)
        return cls(
            name=name,
            vocab=vocab,
            train=vocab.encode(splits["train"]),
            valid=vocab.encode(splits["valid"]),
            test=vocab.encode(splits["test"]),
        )
