"""Dense integer indexes for the NSCaching cache keys (paper §III-B).

NSCaching addresses its head cache by ``(r, t)`` and its tail cache by
``(h, r)``.  The dict-backed cache materialises one Python tuple per batch
row per access; at paper defaults that is two tuples per triple per batch
per epoch.  :class:`KeyIndex` removes the tuples from the hot path: the
distinct key pairs of a dataset are enumerated **once** (``np.unique`` over
an integer encoding of the train split) and every pair maps to a dense row
index into a preallocated array cache.  Batch resolution is then a single
vectorised ``searchsorted``, and the trainer can go further and precompute
the row indices of the whole training split up front.

:class:`TripleKeyIndex` bundles the two sides so samplers build both maps
in one pass over the triples.

:class:`BucketIndex` adds the memory-bounded addressing mode (paper §VI):
it folds a :class:`KeyIndex`'s dense rows onto a fixed number of bucket
rows through :func:`stable_key_hash`, the vectorised counterpart of the
scalar hash in :mod:`repro.core.hashed`.  The whole key set is hashed once
at construction, so translating a batch of dense rows to bucket rows is a
single fancy index in the hot loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.triples import HEAD, REL, TAIL

__all__ = [
    "BucketIndex",
    "KeyIndex",
    "TripleKeyIndex",
    "even_ranges",
    "stable_key_hash",
]

# Knuth-style multiplicative mixing constants (deterministic across runs
# and processes, unlike Python's salted ``hash()``).  Must match the
# scalar implementation in ``repro.core.hashed``.
_MIX_A = np.uint64(0x9E3779B97F4A7C15)
_MIX_B = np.uint64(0xC2B2AE3D27D4EB4F)


def stable_key_hash(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Deterministic 64-bit hashes of ``(first[i], second[i])`` id pairs.

    Vectorised: hashing ``n`` keys is four uint64 array ops instead of a
    per-key Python loop.  Element-for-element identical to the scalar
    ``repro.core.hashed.stable_key_hash`` (enforced by test); returns a
    ``uint64`` array of the broadcast shape of the inputs.
    """
    # 1-element minimum keeps the arithmetic on arrays: numpy wraps array
    # integer overflow silently (wanted here) but warns on scalars.
    a = np.atleast_1d(np.asarray(first, dtype=np.int64)).astype(np.uint64)
    b = np.atleast_1d(np.asarray(second, dtype=np.int64)).astype(np.uint64)
    x = a * _MIX_A + b * _MIX_B
    x ^= x >> np.uint64(29)
    x *= _MIX_A
    x ^= x >> np.uint64(32)
    return x


def even_ranges(n_rows: int, n_parts: int) -> np.ndarray:
    """Bounds of ``n_parts`` contiguous near-equal ranges covering ``[0, n_rows)``.

    Returns an int64 array of ``n_parts + 1`` ascending bounds with
    ``bounds[0] == 0`` and ``bounds[-1] == n_rows``; part ``i`` owns rows
    ``[bounds[i], bounds[i+1])``.  Sizes differ by at most one (the first
    ``n_rows % n_parts`` parts get the extra row), so partitioning a cache
    row-space never concentrates load by construction.  Parts may be empty
    when ``n_parts > n_rows``.
    """
    if n_parts < 1:
        raise ValueError(f"n_parts must be >= 1, got {n_parts}")
    if n_rows < 0:
        raise ValueError(f"n_rows must be >= 0, got {n_rows}")
    sizes = np.full(n_parts, n_rows // n_parts, dtype=np.int64)
    sizes[: n_rows % n_parts] += 1
    bounds = np.zeros(n_parts + 1, dtype=np.int64)
    np.cumsum(sizes, out=bounds[1:])
    return bounds


class KeyIndex:
    """A bijection between distinct ``(first, second)`` id pairs and rows.

    Pairs are encoded as ``first * n_second + second`` (an injective code
    because ``0 <= second < n_second``), deduplicated and sorted; a pair's
    row is its rank among the distinct codes.
    """

    def __init__(self, first: np.ndarray, second: np.ndarray, n_second: int) -> None:
        first = np.asarray(first, dtype=np.int64)
        second = np.asarray(second, dtype=np.int64)
        if first.shape != second.shape or first.ndim != 1:
            raise ValueError(
                f"key components must be equal-length 1-D arrays, got "
                f"{first.shape} and {second.shape}"
            )
        if n_second <= 0:
            raise ValueError(f"n_second must be > 0, got {n_second}")
        if len(second) and (second.min() < 0 or second.max() >= n_second):
            raise ValueError("second component out of range [0, n_second)")
        if len(first) and first.min() < 0:
            raise ValueError("first component must be non-negative")
        self.n_second = int(n_second)
        self._codes = np.unique(first * self.n_second + second)  # sorted

    # -- sizes -----------------------------------------------------------
    @property
    def n_keys(self) -> int:
        """Number of distinct pairs (= cache rows needed)."""
        return len(self._codes)

    # -- lookups ---------------------------------------------------------
    def rows(self, first: np.ndarray, second: np.ndarray) -> np.ndarray:
        """Row index of each ``(first[i], second[i])`` pair; shape ``[B]``.

        Raises ``KeyError`` for pairs that were not in the indexed set —
        the array cache has no storage for them.
        """
        first = np.asarray(first, dtype=np.int64)
        second = np.asarray(second, dtype=np.int64)
        codes = first * self.n_second + second
        if len(codes) == 0:
            return np.empty(0, dtype=np.int64)
        rows = np.searchsorted(self._codes, codes)
        rows_clipped = np.minimum(rows, self.n_keys - 1) if self.n_keys else rows
        missing = self.n_keys == 0 or not np.array_equal(
            self._codes[rows_clipped], codes
        )
        if missing:
            bad = (
                np.flatnonzero(self._codes[rows_clipped] != codes)[0]
                if self.n_keys
                else 0
            )
            raise KeyError(
                f"pair ({int(first[bad])}, {int(second[bad])}) is not in the "
                "key index (only keys seen at build time have cache rows)"
            )
        return rows

    def row_of(self, key: tuple[int, int]) -> int:
        """Row index of a single pair."""
        return int(self.rows(np.array([key[0]]), np.array([key[1]]))[0])

    def contains(self, key: tuple[int, int]) -> bool:
        """Whether a pair has a row."""
        code = int(key[0]) * self.n_second + int(key[1])
        pos = np.searchsorted(self._codes, code)
        return pos < self.n_keys and self._codes[pos] == code

    def key_of(self, row: int) -> tuple[int, int]:
        """The pair stored at ``row`` (inverse of :meth:`row_of`)."""
        code = int(self._codes[row])  # IndexError for out-of-range rows
        return code // self.n_second, code % self.n_second

    def keys(self) -> np.ndarray:
        """All pairs as an ``int64 [n_keys, 2]`` array, in row order."""
        return np.stack(
            [self._codes // self.n_second, self._codes % self.n_second], axis=1
        )

    def __repr__(self) -> str:
        return f"KeyIndex(n_keys={self.n_keys}, n_second={self.n_second})"


class BucketIndex:
    """Folds a :class:`KeyIndex`'s dense rows onto ``n_buckets`` bucket rows.

    The memory-bounded bucketed cache stores ``n_buckets`` rows no matter
    how many distinct keys the training split has; colliding keys share a
    row.  All indexed keys are hashed **once** here (one vectorised
    :func:`stable_key_hash` pass), so per-batch translation is a single
    fancy index — the per-key Python hash of the dict-hashed backend never
    enters the hot loop.
    """

    def __init__(self, index: KeyIndex, n_buckets: int) -> None:
        if n_buckets <= 0:
            raise ValueError(f"n_buckets must be > 0, got {n_buckets}")
        self.base = index
        self.n_buckets = int(n_buckets)
        pairs = index.keys()
        self._bucket_of = (
            stable_key_hash(pairs[:, 0], pairs[:, 1]) % np.uint64(self.n_buckets)
        ).astype(np.int64)

    # -- sizes -----------------------------------------------------------
    @property
    def n_keys(self) -> int:
        """Distinct keys feeding the buckets (the base index's rows)."""
        return self.base.n_keys

    # -- lookups ---------------------------------------------------------
    def bucket_rows(self, rows: np.ndarray) -> np.ndarray:
        """Bucket row of each dense key row; shape ``[len(rows)]``."""
        return self._bucket_of[np.asarray(rows, dtype=np.int64)]

    def bucket_of(self, key: tuple[int, int]) -> int:
        """Bucket row of an arbitrary pair (indexed or not — hashing
        serves every key, matching the dict-hashed backend)."""
        h = stable_key_hash(
            np.array([key[0]], dtype=np.int64), np.array([key[1]], dtype=np.int64)
        )
        return int(h[0] % np.uint64(self.n_buckets))

    # -- collision introspection ------------------------------------------
    def occupancy(self) -> np.ndarray:
        """Number of indexed keys per bucket row; shape ``[n_buckets]``."""
        return np.bincount(self._bucket_of, minlength=self.n_buckets)

    def load_factor(self) -> float:
        """Mean keys per bucket (``n_keys / n_buckets``)."""
        return self.n_keys / self.n_buckets

    def n_colliding_keys(self) -> int:
        """Keys that share their bucket with at least one other key."""
        occupancy = self.occupancy()
        return int(occupancy[occupancy > 1].sum())

    def __repr__(self) -> str:
        return (
            f"BucketIndex(n_keys={self.n_keys}, n_buckets={self.n_buckets}, "
            f"colliding={self.n_colliding_keys()})"
        )


@dataclass(frozen=True)
class TripleKeyIndex:
    """Head- and tail-cache key indexes for one training split.

    ``head`` maps the head-cache key ``(r, t)`` (Alg. 2 step 5) and
    ``tail`` maps the tail-cache key ``(h, r)``.
    """

    head: KeyIndex
    tail: KeyIndex

    @classmethod
    def from_triples(
        cls, triples: np.ndarray, n_entities: int, n_relations: int
    ) -> "TripleKeyIndex":
        """Index the distinct cache keys of a triple array."""
        triples = np.asarray(triples, dtype=np.int64)
        return cls(
            head=KeyIndex(triples[:, REL], triples[:, TAIL], n_entities),
            tail=KeyIndex(triples[:, HEAD], triples[:, REL], n_relations),
        )

    def head_rows(self, batch: np.ndarray) -> np.ndarray:
        """Head-cache rows for a batch of triples."""
        batch = np.asarray(batch, dtype=np.int64)
        return self.head.rows(batch[:, REL], batch[:, TAIL])

    def tail_rows(self, batch: np.ndarray) -> np.ndarray:
        """Tail-cache rows for a batch of triples."""
        batch = np.asarray(batch, dtype=np.int64)
        return self.tail.rows(batch[:, HEAD], batch[:, REL])
