"""Synthetic knowledge-graph generator with a planted, learnable ground truth.

The paper evaluates on WN18 / FB15K and their harder variants, which cannot
be downloaded in this offline environment.  This module is the documented
substitution (DESIGN.md §2): it *plants* a latent structure —

* every entity ``e`` gets a latent vector ``z_e`` on the unit sphere;
* every relation ``r`` gets a latent map -- either a *translation*
  ``z -> z + v_r`` (TransE-style geometry) or a *diagonal* sign flip
  ``z -> s_r * z`` with ``s_r in {-1, +1}^k`` (multiplicative geometry
  that DistMult/ComplEx-style models fit naturally) -- plus a mapping
  category (1-1 / 1-N / N-1 / N-N) and a restricted *range* of admissible
  tail entities (type structure);
* a triple ``(h, r, t)`` is generated when ``z_t`` is among the nearest
  neighbours of the mapped head ``map_r(z_h)`` inside the relation's range
  (and symmetrically for the many-head side, using the inverse map).

This reproduces the properties the paper's phenomena rest on:

1. the data is low-dimensional and *realisable*, so embedding models train
   to high accuracy and the differences between negative samplers show;
2. hard negatives exist by construction — range-mates of the true tail are
   "near misses" with large scores, giving the skewed score distribution of
   Figure 1;
3. one-to-many / many-to-one structure is explicit, which is what Bernoulli
   sampling and the paper's head/tail caches key on;
4. optional *inverse-duplicate* relations replicate the WN18-vs-WN18RR
   test-leakage distinction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import KGDataset
from repro.data.relations import RelationCategory
from repro.data.triples import Vocabulary, as_triple_array, unique_triples
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive, check_probability

__all__ = [
    "RelationTransform",
    "SyntheticKG",
    "SyntheticKGConfig",
    "SyntheticTruth",
    "generate_kg",
]

_CATEGORIES = (
    RelationCategory.ONE_TO_ONE,
    RelationCategory.ONE_TO_MANY,
    RelationCategory.MANY_TO_ONE,
    RelationCategory.MANY_TO_MANY,
)


@dataclass(frozen=True)
class SyntheticKGConfig:
    """Knobs of the generator.  Defaults give a small, fast, learnable KG.

    Attributes
    ----------
    n_entities, n_relations:
        Vocabulary sizes.  ``n_relations`` counts *base* relations; inverse
        duplicates (if any) are added on top.
    latent_dim:
        Dimension of the planted latent space; keep it well below the
        model embedding dimension so the data is realisable.
    triples_per_relation:
        Approximate number of generated triples per base relation.
    category_mix:
        Probabilities of the four mapping categories, in the order
        (1-1, 1-N, N-1, N-N).
    fan_out_max:
        Maximum neighbours on a "many" side (fan-outs are drawn uniformly
        from ``2..fan_out_max``).
    range_fraction:
        Fraction of entities admissible as tails (and heads) of each
        relation — smaller means stronger type structure and harder
        negatives.
    diagonal_fraction:
        Fraction of base relations whose latent map is a diagonal sign
        flip rather than a translation; gives semantic matching models
        structure they can represent exactly.
    inverse_fraction:
        Fraction of base relations duplicated in inverse direction (WN18
        leakage); 0 gives the "RR"-style variant.
    noise:
        Standard deviation of Gaussian jitter added to the query point,
        which softens the nearest-neighbour rule.
    popularity_exponent:
        Zipf exponent for entity selection; larger means more skewed
        degree distributions.
    valid_fraction, test_fraction:
        Split sizes passed to :meth:`KGDataset.from_triples`.
    """

    n_entities: int = 500
    n_relations: int = 12
    latent_dim: int = 12
    triples_per_relation: int = 300
    category_mix: tuple[float, float, float, float] = (0.15, 0.3, 0.3, 0.25)
    fan_out_max: int = 6
    range_fraction: float = 0.5
    diagonal_fraction: float = 0.0
    inverse_fraction: float = 0.0
    noise: float = 0.05
    popularity_exponent: float = 0.8
    valid_fraction: float = 0.05
    test_fraction: float = 0.05
    name: str = "synthetic"

    def __post_init__(self) -> None:
        check_positive("n_entities", self.n_entities)
        check_positive("n_relations", self.n_relations)
        check_positive("latent_dim", self.latent_dim)
        check_positive("triples_per_relation", self.triples_per_relation)
        check_positive("fan_out_max", self.fan_out_max)
        check_probability("range_fraction", self.range_fraction)
        check_probability("diagonal_fraction", self.diagonal_fraction)
        check_probability("inverse_fraction", self.inverse_fraction)
        check_probability("valid_fraction", self.valid_fraction)
        check_probability("test_fraction", self.test_fraction)
        if abs(sum(self.category_mix) - 1.0) > 1e-9:
            raise ValueError(f"category_mix must sum to 1, got {self.category_mix}")


@dataclass(frozen=True)
class RelationTransform:
    """The latent map of one relation: a translation or a diagonal flip."""

    kind: str  # "translation" | "diagonal"
    vector: np.ndarray  # v_r (translation) or s_r in {-1, +1}^k (diagonal)

    def __post_init__(self) -> None:
        if self.kind not in ("translation", "diagonal"):
            raise ValueError(f"unknown transform kind {self.kind!r}")

    def apply(self, z: np.ndarray) -> np.ndarray:
        """Map head latents forward: where tails of this relation live."""
        if self.kind == "translation":
            return z + self.vector
        return z * self.vector

    def invert(self, z: np.ndarray) -> np.ndarray:
        """Map tail latents backward: where heads of this relation live."""
        if self.kind == "translation":
            return z - self.vector
        return z * self.vector  # sign flips are involutions

    def inverse(self) -> "RelationTransform":
        """The transform of the inverse relation."""
        if self.kind == "translation":
            return RelationTransform("translation", -self.vector)
        return self


@dataclass
class SyntheticTruth:
    """The planted ground truth, exposed for analysis and tests."""

    entity_latents: np.ndarray  # [E, k]
    relation_transforms: list[RelationTransform]  # length R_total
    relation_categories: list[RelationCategory]  # length R_total
    relation_ranges: list[np.ndarray]  # admissible tail ids per relation
    inverse_of: dict[int, int] = field(default_factory=dict)  # r_inv -> r_base


@dataclass
class SyntheticKG:
    """A generated dataset together with its ground truth."""

    dataset: KGDataset
    truth: SyntheticTruth


def _popularity_weights(n: int, exponent: float, rng: np.random.Generator) -> np.ndarray:
    """Zipf-like sampling weights over a random entity permutation."""
    ranks = np.empty(n, dtype=np.float64)
    ranks[rng.permutation(n)] = np.arange(1, n + 1)
    weights = ranks**-exponent
    return weights / weights.sum()


def _nearest_in_range(
    queries: np.ndarray,
    latents: np.ndarray,
    candidates: np.ndarray,
    k: np.ndarray,
    exclude: np.ndarray | None,
) -> list[np.ndarray]:
    """Per query, the ``k[i]`` candidates whose latents are nearest.

    ``candidates`` is the relation's range; ``exclude[i]`` (an entity id or
    -1) is removed from row ``i``'s candidates (no self-loops).
    """
    cand_lat = latents[candidates]  # [C, k]
    # squared euclidean distance matrix [Q, C]
    d2 = (
        np.sum(queries**2, axis=1, keepdims=True)
        - 2.0 * queries @ cand_lat.T
        + np.sum(cand_lat**2, axis=1)
    )
    if exclude is not None:
        for i, ent in enumerate(exclude):
            if ent < 0:
                continue
            hits = np.flatnonzero(candidates == ent)
            d2[i, hits] = np.inf
    results: list[np.ndarray] = []
    n_cand = len(candidates)
    for i in range(len(queries)):
        ki = min(int(k[i]), n_cand - 1 if exclude is not None else n_cand)
        if ki <= 0:
            results.append(np.empty(0, dtype=np.int64))
            continue
        top = np.argpartition(d2[i], ki - 1)[:ki]
        results.append(candidates[top])
    return results


def _draw_categories(
    n: int, mix: tuple[float, float, float, float], rng: np.random.Generator
) -> list[RelationCategory]:
    idx = rng.choice(len(_CATEGORIES), size=n, p=np.asarray(mix))
    return [_CATEGORIES[i] for i in idx]


def generate_kg(
    config: SyntheticKGConfig | None = None,
    rng: np.random.Generator | int | None = None,
) -> SyntheticKG:
    """Generate a dataset according to ``config`` (see module docstring)."""
    config = config or SyntheticKGConfig()
    rng = ensure_rng(rng)
    n_ent = config.n_entities
    k_dim = config.latent_dim

    latents = rng.normal(size=(n_ent, k_dim))
    latents /= np.linalg.norm(latents, axis=1, keepdims=True)
    popularity = _popularity_weights(n_ent, config.popularity_exponent, rng)

    categories = _draw_categories(config.n_relations, config.category_mix, rng)
    transforms: list[RelationTransform] = []
    ranges: list[np.ndarray] = []
    triple_rows: list[np.ndarray] = []

    n_diagonal = int(round(config.diagonal_fraction * config.n_relations))
    range_size = max(int(config.range_fraction * n_ent), config.fan_out_max + 2)
    for r, category in enumerate(categories):
        if r < n_diagonal:
            s_r = rng.choice([-1.0, 1.0], size=k_dim)
            transform = RelationTransform("diagonal", s_r)
        else:
            v_r = rng.normal(size=k_dim)
            v_r *= 0.8 / np.linalg.norm(v_r)
            transform = RelationTransform("translation", v_r)
        transforms.append(transform)
        rel_range = np.sort(rng.choice(n_ent, size=range_size, replace=False))
        ranges.append(rel_range)
        triple_rows.append(
            _generate_relation_triples(
                r, category, transform, rel_range, latents, popularity, config, rng
            )
        )

    triples = unique_triples(np.concatenate(triple_rows, axis=0))

    # Inverse duplicates (WN18-style leakage).
    inverse_of: dict[int, int] = {}
    n_inverse = int(round(config.inverse_fraction * config.n_relations))
    if n_inverse > 0:
        base_ids = rng.choice(config.n_relations, size=n_inverse, replace=False)
        extra_rows = []
        for offset, base in enumerate(sorted(int(b) for b in base_ids)):
            r_inv = config.n_relations + offset
            inverse_of[r_inv] = base
            base_triples = triples[triples[:, 1] == base]
            # Subsample so the inverse is a near- (not exact-) duplicate.
            keep = rng.random(len(base_triples)) < 0.9
            inv = base_triples[keep][:, [2, 1, 0]].copy()
            inv[:, 1] = r_inv
            extra_rows.append(inv)
            transforms.append(transforms[base].inverse())
            categories.append(_invert_category(categories[base]))
            ranges.append(ranges[base])
        triples = unique_triples(np.concatenate([triples, *extra_rows], axis=0))

    n_rel_total = config.n_relations + n_inverse
    vocab = Vocabulary.anonymous(n_ent, n_rel_total)
    dataset = KGDataset.from_triples(
        config.name,
        triples,
        vocab,
        valid_fraction=config.valid_fraction,
        test_fraction=config.test_fraction,
        rng=rng,
    )
    truth = SyntheticTruth(
        entity_latents=latents,
        relation_transforms=transforms,
        relation_categories=categories,
        relation_ranges=ranges,
        inverse_of=inverse_of,
    )
    return SyntheticKG(dataset=dataset, truth=truth)


def _invert_category(category: RelationCategory) -> RelationCategory:
    if category is RelationCategory.ONE_TO_MANY:
        return RelationCategory.MANY_TO_ONE
    if category is RelationCategory.MANY_TO_ONE:
        return RelationCategory.ONE_TO_MANY
    return category


def _generate_relation_triples(
    relation: int,
    category: RelationCategory,
    transform: RelationTransform,
    rel_range: np.ndarray,
    latents: np.ndarray,
    popularity: np.ndarray,
    config: SyntheticKGConfig,
    rng: np.random.Generator,
) -> np.ndarray:
    """Generate the triples of one relation according to its category."""
    target = config.triples_per_relation
    fan = lambda size: rng.integers(2, config.fan_out_max + 1, size=size)  # noqa: E731

    def jitter(n: int) -> np.ndarray:
        return config.noise * rng.normal(size=(n, latents.shape[1]))

    rows: list[tuple[int, int, int]] = []
    if category in (RelationCategory.ONE_TO_ONE, RelationCategory.ONE_TO_MANY):
        if category is RelationCategory.ONE_TO_ONE:
            fan_out = np.ones(target, dtype=np.int64)
            n_heads = target
        else:
            fan_out = fan(max(target // 3, 1))
            n_heads = len(fan_out)
        heads = rng.choice(len(popularity), size=n_heads, p=popularity)
        queries = transform.apply(latents[heads]) + jitter(n_heads)
        tail_lists = _nearest_in_range(queries, latents, rel_range, fan_out, heads)
        for h, tails in zip(heads, tail_lists):
            rows.extend((int(h), relation, int(t)) for t in tails)
    elif category is RelationCategory.MANY_TO_ONE:
        fan_in = fan(max(target // 3, 1))
        n_tails = len(fan_in)
        tails = rng.choice(len(popularity), size=n_tails, p=popularity)
        queries = transform.invert(latents[tails]) + jitter(n_tails)
        head_lists = _nearest_in_range(queries, latents, rel_range, fan_in, tails)
        for t, heads_for_t in zip(tails, head_lists):
            rows.extend((int(h), relation, int(t)) for h in heads_for_t)
    else:  # N-N: fan out from heads, then add extra heads per produced tail.
        fan_out = fan(max(target // 5, 1))
        n_heads = len(fan_out)
        heads = rng.choice(len(popularity), size=n_heads, p=popularity)
        queries = transform.apply(latents[heads]) + jitter(n_heads)
        tail_lists = _nearest_in_range(queries, latents, rel_range, fan_out, heads)
        produced_tails: list[int] = []
        for h, tails in zip(heads, tail_lists):
            rows.extend((int(h), relation, int(t)) for t in tails)
            produced_tails.extend(int(t) for t in tails)
        if produced_tails:
            uniq_tails = np.unique(np.asarray(produced_tails, dtype=np.int64))
            fan_in = rng.integers(1, 4, size=len(uniq_tails))
            back_queries = transform.invert(latents[uniq_tails]) + jitter(
                len(uniq_tails)
            )
            head_lists = _nearest_in_range(
                back_queries, latents, rel_range, fan_in, uniq_tails
            )
            for t, extra_heads in zip(uniq_tails, head_lists):
                rows.extend((int(h), relation, int(t)) for h in extra_heads)
    if not rows:
        # Degenerate configuration: fall back to a single random edge so the
        # relation is observed at least once.
        h = int(rng.integers(len(popularity)))
        t = int(rel_range[rng.integers(len(rel_range))])
        rows.append((h, relation, t))
    return as_triple_array(rows)
