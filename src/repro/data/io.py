"""TSV serialisation in the standard KG-benchmark format.

The public benchmark releases (WN18, FB15K, ...) ship triples one per line
as ``head<TAB>relation<TAB>tail``.  These helpers read and write that format
so that locally generated datasets are interchangeable with the real files
when they are available.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

import numpy as np

from repro.data.triples import Vocabulary, as_triple_array

__all__ = ["load_triples_tsv", "save_triples_tsv", "load_label_triples", "save_label_triples"]


def load_label_triples(path: str | Path) -> list[tuple[str, str, str]]:
    """Read label triples from a TSV file, skipping blank lines."""
    triples: list[tuple[str, str, str]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise ValueError(
                    f"{path}:{line_no}: expected 3 tab-separated fields, got {len(parts)}"
                )
            triples.append((parts[0], parts[1], parts[2]))
    return triples


def save_label_triples(
    path: str | Path, triples: Iterable[tuple[str, str, str]]
) -> int:
    """Write label triples to a TSV file; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for h, r, t in triples:
            handle.write(f"{h}\t{r}\t{t}\n")
            count += 1
    return count


def load_triples_tsv(path: str | Path, vocab: Vocabulary) -> np.ndarray:
    """Read a TSV file and encode it against an existing vocabulary."""
    return vocab.encode(load_label_triples(path))


def save_triples_tsv(path: str | Path, triples: np.ndarray, vocab: Vocabulary) -> int:
    """Encode-aware save: decode ids through ``vocab`` and write TSV."""
    return save_label_triples(path, vocab.decode(as_triple_array(triples)))
