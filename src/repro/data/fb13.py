"""An interpretable typed knowledge graph in the style of FB13.

Table VI of the paper inspects the *contents* of a tail cache for the fact
``(manorama, profession, actor)`` on FB13 and shows it drifting from random
entities to type-consistent professions — the self-paced-learning effect.
FB13 is not available offline, so this module builds a small KG whose
entities have human-readable labels and explicit types:

* persons, each with a profession, nationality, gender and employer;
* attribute relations: ``profession``, ``nationality``, ``gender``,
  ``works_at`` (person -> typed value);
* a social relation ``colleague_of`` between persons sharing an employer.

Attributes are correlated (institutions concentrate professions), so the
graph is learnable, and the entity labels let the cache-evolution study
print recognisable snapshots exactly like the paper's table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import KGDataset
from repro.data.triples import Vocabulary, unique_triples
from repro.utils.rng import ensure_rng

__all__ = ["FB13Like", "fb13_like", "PROFESSIONS", "NATIONALITIES"]

PROFESSIONS = (
    "actor", "physician", "artist", "attorney", "accountant", "aviator",
    "coach", "politician", "scientist", "musician", "journalist", "engineer",
    "sex_worker", "teacher", "athlete",
)

NATIONALITIES = (
    "american", "british", "indian", "french", "german", "chinese",
    "japanese", "brazilian", "canadian", "italian",
)

GENDERS = ("male", "female")

INSTITUTIONS = (
    "general_hospital", "city_theatre", "state_university", "law_firm",
    "national_lab", "film_studio", "news_desk", "sports_club",
    "parliament", "conservatory",
)

#: Professions concentrated at each institution (first entry is dominant).
_INSTITUTION_PROFESSIONS: dict[str, tuple[str, ...]] = {
    "general_hospital": ("physician", "scientist", "accountant"),
    "city_theatre": ("actor", "artist", "musician"),
    "state_university": ("teacher", "scientist", "engineer"),
    "law_firm": ("attorney", "accountant", "politician"),
    "national_lab": ("scientist", "engineer", "physician"),
    "film_studio": ("actor", "artist", "journalist"),
    "news_desk": ("journalist", "politician", "artist"),
    "sports_club": ("athlete", "coach", "physician"),
    "parliament": ("politician", "attorney", "journalist"),
    "conservatory": ("musician", "artist", "teacher"),
}


@dataclass
class FB13Like:
    """The generated dataset plus the type assignment used to build it."""

    dataset: KGDataset
    person_labels: tuple[str, ...]
    profession_of: dict[str, str]  # person label -> profession label
    type_of: dict[str, str]  # entity label -> {person, profession, ...}


def fb13_like(
    n_persons: int = 160,
    rng: np.random.Generator | int | None = None,
    *,
    valid_fraction: float = 0.05,
    test_fraction: float = 0.05,
) -> FB13Like:
    """Build the FB13 analogue.  See module docstring."""
    if n_persons < 4:
        raise ValueError(f"n_persons must be >= 4, got {n_persons}")
    rng = ensure_rng(rng)

    persons = tuple(f"person_{i:03d}" for i in range(n_persons))
    entity_labels = list(persons) + list(PROFESSIONS) + list(NATIONALITIES)
    entity_labels += list(GENDERS) + list(INSTITUTIONS)
    relations = ("profession", "nationality", "gender", "works_at", "colleague_of")
    vocab = Vocabulary(tuple(entity_labels), relations)

    type_of: dict[str, str] = {}
    for label in persons:
        type_of[label] = "person"
    for label in PROFESSIONS:
        type_of[label] = "profession"
    for label in NATIONALITIES:
        type_of[label] = "nationality"
    for label in GENDERS:
        type_of[label] = "gender"
    for label in INSTITUTIONS:
        type_of[label] = "institution"

    profession_of: dict[str, str] = {}
    employer_of: dict[str, str] = {}
    labelled: list[tuple[str, str, str]] = []
    for person in persons:
        institution = INSTITUTIONS[rng.integers(len(INSTITUTIONS))]
        employer_of[person] = institution
        pool = _INSTITUTION_PROFESSIONS[institution]
        # Dominant profession with prob 0.6, other institutional ones 0.3,
        # fully random 0.1 -> correlated but not deterministic.
        u = rng.random()
        if u < 0.6:
            profession = pool[0]
        elif u < 0.9:
            profession = pool[1 + rng.integers(len(pool) - 1)]
        else:
            profession = PROFESSIONS[rng.integers(len(PROFESSIONS))]
        profession_of[person] = profession
        nationality = NATIONALITIES[rng.integers(len(NATIONALITIES))]
        gender = GENDERS[rng.integers(len(GENDERS))]
        labelled.append((person, "profession", profession))
        labelled.append((person, "nationality", nationality))
        labelled.append((person, "gender", gender))
        labelled.append((person, "works_at", institution))

    # colleague_of between persons at the same institution (sampled pairs).
    by_institution: dict[str, list[str]] = {}
    for person, institution in employer_of.items():
        by_institution.setdefault(institution, []).append(person)
    for members in by_institution.values():
        if len(members) < 2:
            continue
        n_pairs = min(len(members) * 2, len(members) * (len(members) - 1) // 2)
        for _ in range(n_pairs):
            i, j = rng.choice(len(members), size=2, replace=False)
            labelled.append((members[i], "colleague_of", members[j]))

    triples = unique_triples(vocab.encode(labelled))
    dataset = KGDataset.from_triples(
        "fb13_like",
        triples,
        vocab,
        valid_fraction=valid_fraction,
        test_fraction=test_fraction,
        rng=rng,
    )
    return FB13Like(
        dataset=dataset,
        person_labels=persons,
        profession_of=profession_of,
        type_of=type_of,
    )


def type_consistency(
    fb13: FB13Like, relation_label: str, entity_ids: np.ndarray
) -> float:
    """Fraction of ``entity_ids`` whose type matches the relation's range.

    Used by the Table VI reproduction: as training proceeds, the tail cache
    of a ``profession`` fact should contain more ``profession``-typed
    entities.
    """
    expected = {
        "profession": "profession",
        "nationality": "nationality",
        "gender": "gender",
        "works_at": "institution",
        "colleague_of": "person",
    }[relation_label]
    ids = np.asarray(entity_ids, dtype=np.int64).ravel()
    labels = [fb13.dataset.vocab.entity_label(int(e)) for e in ids]
    if not labels:
        return 0.0
    matches = sum(1 for label in labels if fb13.type_of[label] == expected)
    return matches / len(labels)
