"""Named, seeded dataset configurations mirroring the paper's benchmarks.

The four public datasets of Table II cannot be downloaded offline, so each
gets a laptop-scale synthetic analogue (see :mod:`repro.data.synthetic` and
DESIGN.md §2 for why the substitution preserves the relevant behaviour):

=============  =====================================================
``wn18_like``     few relations, hierarchy-flavoured, *with* inverse
                  duplicates -> strong test leakage, high absolute
                  metrics, like WN18
``wn18rr_like``   same generator, inverse duplicates removed and fewer
                  triples -> harder, like WN18RR
``fb15k_like``    many relations, dense, some inverse duplicates,
                  heavy 1-N/N-N mix, like FB15K
``fb15k237_like`` many relations, no inverse duplicates, like FB15K237
=============  =====================================================

Every loader takes a ``scale`` multiplier so tests can shrink the datasets
further, and a ``seed`` so experiments are reproducible.
"""

from __future__ import annotations

from typing import Callable

from repro.data.dataset import KGDataset
from repro.data.synthetic import SyntheticKGConfig, generate_kg

__all__ = [
    "BENCHMARKS",
    "fb15k237_like",
    "fb15k_like",
    "load_benchmark",
    "wn18_like",
    "wn18rr_like",
]


def _scaled(value: int, scale: float, minimum: int) -> int:
    return max(int(round(value * scale)), minimum)


def wn18_like(seed: int = 0, scale: float = 1.0) -> KGDataset:
    """WN18 analogue: hierarchical, few relations, inverse-duplicate leakage."""
    config = SyntheticKGConfig(
        name="wn18_like",
        n_entities=_scaled(1200, scale, 60),
        n_relations=12,
        latent_dim=12,
        triples_per_relation=_scaled(700, scale, 40),
        category_mix=(0.25, 0.3, 0.3, 0.15),
        fan_out_max=4,
        range_fraction=0.4,
        diagonal_fraction=0.35,
        inverse_fraction=0.5,
        noise=0.04,
        popularity_exponent=0.9,
    )
    return generate_kg(config, rng=seed).dataset


def wn18rr_like(seed: int = 0, scale: float = 1.0) -> KGDataset:
    """WN18RR analogue: WN18-like with inverse duplicates removed, sparser."""
    config = SyntheticKGConfig(
        name="wn18rr_like",
        n_entities=_scaled(1200, scale, 60),
        n_relations=11,
        latent_dim=12,
        triples_per_relation=_scaled(500, scale, 30),
        category_mix=(0.25, 0.3, 0.3, 0.15),
        fan_out_max=4,
        range_fraction=0.4,
        diagonal_fraction=0.35,
        inverse_fraction=0.0,
        noise=0.06,
        popularity_exponent=0.9,
    )
    return generate_kg(config, rng=seed).dataset


def fb15k_like(seed: int = 0, scale: float = 1.0) -> KGDataset:
    """FB15K analogue: many relations, dense, heavy 1-N/N-N, some leakage."""
    config = SyntheticKGConfig(
        name="fb15k_like",
        n_entities=_scaled(900, scale, 60),
        n_relations=40,
        latent_dim=14,
        triples_per_relation=_scaled(400, scale, 30),
        category_mix=(0.1, 0.3, 0.3, 0.3),
        fan_out_max=6,
        range_fraction=0.3,
        diagonal_fraction=0.5,
        inverse_fraction=0.3,
        noise=0.05,
        popularity_exponent=1.0,
    )
    return generate_kg(config, rng=seed).dataset


def fb15k237_like(seed: int = 0, scale: float = 1.0) -> KGDataset:
    """FB15K237 analogue: FB15K-like without inverse duplicates."""
    config = SyntheticKGConfig(
        name="fb15k237_like",
        n_entities=_scaled(900, scale, 60),
        n_relations=35,
        latent_dim=14,
        triples_per_relation=_scaled(300, scale, 25),
        category_mix=(0.1, 0.3, 0.3, 0.3),
        fan_out_max=6,
        range_fraction=0.3,
        diagonal_fraction=0.5,
        inverse_fraction=0.0,
        noise=0.07,
        popularity_exponent=1.0,
    )
    return generate_kg(config, rng=seed).dataset


#: Registry of the four Table II analogues, keyed by paper dataset name.
BENCHMARKS: dict[str, Callable[..., KGDataset]] = {
    "WN18": wn18_like,
    "WN18RR": wn18rr_like,
    "FB15K": fb15k_like,
    "FB15K237": fb15k237_like,
}


def load_benchmark(name: str, seed: int = 0, scale: float = 1.0) -> KGDataset:
    """Load a Table II analogue by paper dataset name (case-insensitive)."""
    key = name.upper().replace("-", "")
    if key not in BENCHMARKS:
        raise KeyError(f"unknown benchmark {name!r}; options: {sorted(BENCHMARKS)}")
    return BENCHMARKS[key](seed=seed, scale=scale)
