"""Negative-triple utilities shared by evaluation and analysis.

* :func:`corrupt_uniform` — vectorised uniform corruption of heads/tails,
  the raw material of every sampler baseline;
* :func:`classification_split` — labelled positive/negative triples for the
  triplet-classification task (the released ``valid_neg.txt`` files of
  WN18RR / FB15K237 are reproduced by corruption that avoids all known
  triples);
* :func:`false_negative_rate` — how often a corruption procedure hits a
  true triple, the quantity behind the paper's false-negative discussion.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import KGDataset
from repro.data.triples import HEAD, TAIL, as_triple_array
from repro.utils.rng import ensure_rng

__all__ = ["corrupt_uniform", "classification_split", "false_negative_rate"]


def corrupt_uniform(
    triples: np.ndarray,
    n_entities: int,
    rng: np.random.Generator | int | None = None,
    *,
    head_probability: float | np.ndarray = 0.5,
) -> np.ndarray:
    """Corrupt each triple by replacing its head or tail with a uniform entity.

    Parameters
    ----------
    head_probability:
        Scalar, or per-triple array, giving the probability of corrupting
        the head (Bernoulli sampling passes per-relation values here).
    """
    rng = ensure_rng(rng)
    triples = as_triple_array(triples)
    corrupted = triples.copy()
    n = len(triples)
    if n == 0:
        return corrupted
    replace_head = rng.random(n) < np.broadcast_to(head_probability, (n,))
    replacements = rng.integers(0, n_entities, size=n)
    corrupted[replace_head, HEAD] = replacements[replace_head]
    corrupted[~replace_head, TAIL] = replacements[~replace_head]
    return corrupted


def classification_split(
    dataset: KGDataset,
    split: str = "test",
    rng: np.random.Generator | int | None = None,
    *,
    max_resample: int = 100,
) -> tuple[np.ndarray, np.ndarray]:
    """Labelled triples for the triplet-classification task.

    For every positive triple in the chosen split, one negative is produced
    by corruption, re-drawn until it is not a known triple (matching how the
    released ``*_neg`` files were constructed).  Returns ``(triples, labels)``
    with ``labels`` in {+1, -1}, positives first.
    """
    if split not in ("valid", "test"):
        raise ValueError(f"split must be 'valid' or 'test', got {split!r}")
    rng = ensure_rng(rng)
    positives = getattr(dataset, split)
    known = dataset.known_triples
    negatives = corrupt_uniform(positives, dataset.n_entities, rng)
    for _ in range(max_resample):
        bad = np.fromiter(
            (tuple(row) in known for row in negatives.tolist()),
            dtype=bool,
            count=len(negatives),
        )
        if not bad.any():
            break
        negatives[bad] = corrupt_uniform(positives[bad], dataset.n_entities, rng)
    triples = np.concatenate([positives, negatives], axis=0)
    labels = np.concatenate(
        [np.ones(len(positives), dtype=np.int64), -np.ones(len(negatives), dtype=np.int64)]
    )
    return triples, labels


def false_negative_rate(candidates: np.ndarray, dataset: KGDataset) -> float:
    """Fraction of candidate triples that are actually true (in any split)."""
    candidates = as_triple_array(candidates)
    if len(candidates) == 0:
        return 0.0
    known = dataset.known_triples
    hits = sum(1 for row in candidates.tolist() if tuple(row) in known)
    return hits / len(candidates)
