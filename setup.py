"""Legacy setup shim.

The execution environment ships a setuptools too old for PEP 660 editable
installs (no ``bdist_wheel``); this file lets ``pip install -e .`` fall back
to the classic ``setup.py develop`` path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
